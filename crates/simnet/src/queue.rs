//! Pooled per-link output queues and queueing disciplines.
//!
//! The paper assesses routing schemes by routing time, queue size and
//! queueing discipline (§2.2.1). Two disciplines appear:
//!
//! * **FIFO** — used by the universal leveled-network algorithm
//!   (Theorem 2.1 explicitly promises FIFO queues);
//! * **furthest-destination-first** — used by the mesh algorithm (§3.4),
//!   where contention is resolved in favour of the packet with the larger
//!   remaining distance (encoded in [`Packet::priority`]).
//!
//! Storage is a single slab arena — [`PacketPool`] — shared by every
//! queue of an engine: one contiguous `Vec` of packet slots threaded by an
//! intrusive free list. A [`LinkQueue`] is just four `u32` indices into
//! that arena (head/tail of its FIFO chain plus counters), so enqueue and
//! pop never touch the allocator once the arena has grown to the
//! high-water mark of a run, and tearing a queue down costs nothing.
//!
//! Selection is split into a read-only [`LinkQueue::select`] (returns the
//! slot to extract) and a mutating [`LinkQueue::commit_pop`], so the
//! engine's parallel transmit phase can scan queues from worker threads
//! with shared references and commit the extractions serially.
//!
//! A [`LinkQueue`] records its own high-water mark so Theorem-level queue
//! bounds (O(ℓ), O(log n), O(1)) can be checked per run.

use crate::packet::Packet;

/// Sentinel index terminating slot chains ("no slot").
pub(crate) const NIL: u32 = u32::MAX;

/// Queueing discipline for resolving link contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// First-in first-out (paper's preference: simplest hardware).
    #[default]
    Fifo,
    /// Largest [`Packet::priority`] first (furthest-destination-first when
    /// the router sets `priority` to the remaining distance); FIFO among
    /// equals.
    FurthestFirst,
}

/// One arena slot: a packet plus the intrusive `next` link (chains both
/// per-link FIFOs and the free list).
#[derive(Debug, Clone, Copy)]
struct Slot {
    pkt: Packet,
    next: u32,
}

/// The slab arena backing every [`LinkQueue`] of one engine.
///
/// Freed slots go on an intrusive free list and are recycled before the
/// backing `Vec` grows, so steady-state traffic allocates nothing.
#[derive(Debug, Clone)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free_head: u32,
}

impl Default for PacketPool {
    fn default() -> Self {
        PacketPool::new()
    }
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        PacketPool {
            slots: Vec::new(),
            free_head: NIL,
        }
    }

    /// Slots currently backing the pool (occupied + free); the arena's
    /// high-water mark.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `pkt`, recycling a free slot if one exists.
    fn alloc(&mut self, pkt: Packet) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next;
            self.slots[idx as usize] = Slot { pkt, next: NIL };
            idx
        } else {
            let idx = self.slots.len() as u32;
            assert!(idx != NIL, "packet pool exhausted the u32 index space");
            self.slots.push(Slot { pkt, next: NIL });
            idx
        }
    }

    /// Return `idx` to the free list (the packet value is left in place;
    /// it is dead storage until the slot is recycled).
    fn free(&mut self, idx: u32) {
        self.slots[idx as usize].next = self.free_head;
        self.free_head = idx;
    }

    /// Drop every slot but keep the arena's backing allocation, so a
    /// reused engine re-warms without touching the allocator.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
    }

    fn pkt(&self, idx: u32) -> &Packet {
        &self.slots[idx as usize].pkt
    }

    fn next(&self, idx: u32) -> u32 {
        self.slots[idx as usize].next
    }

    /// Walk the free list, marking each slot in `seen` (sized to
    /// [`capacity`](Self::capacity)). Errors on an out-of-range index or
    /// a revisited slot (a free-list cycle, or a slot shared with a
    /// queue chain walked earlier into the same bitmap). Returns the
    /// free-slot count.
    pub(crate) fn walk_free(&self, seen: &mut [bool]) -> Result<usize, String> {
        let mut count = 0usize;
        let mut cur = self.free_head;
        while cur != NIL {
            let i = cur as usize;
            if i >= self.slots.len() {
                return Err(format!(
                    "free list points at slot {i} beyond capacity {}",
                    self.slots.len()
                ));
            }
            if seen[i] {
                return Err(format!("slot {i} reached twice via the free list"));
            }
            seen[i] = true;
            count += 1;
            cur = self.slots[i].next;
        }
        Ok(count)
    }
}

/// A pending extraction chosen by [`LinkQueue::select`]: the slot to
/// remove and its predecessor in the chain (`NIL` when it is the head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    slot: u32,
    prev: u32,
}

/// The output queue of one directed link: head/tail indices of its
/// arrival-order chain in the shared [`PacketPool`], plus counters.
#[derive(Debug, Clone)]
pub struct LinkQueue {
    head: u32,
    tail: u32,
    len: u32,
    high_water: u32,
    pops: u32,
}

impl Default for LinkQueue {
    fn default() -> Self {
        LinkQueue::new()
    }
}

impl LinkQueue {
    /// An empty queue.
    pub fn new() -> Self {
        LinkQueue {
            head: NIL,
            tail: NIL,
            len: 0,
            high_water: 0,
            pops: 0,
        }
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest length this queue ever reached (since the last
    /// [`LinkQueue::reset`]).
    pub fn high_water(&self) -> usize {
        self.high_water as usize
    }

    /// Packets that have traversed this link (successful pop count) — the
    /// per-link load used by the congestion tables.
    pub fn pops(&self) -> u32 {
        self.pops
    }

    /// Enqueue a packet (position depends only on arrival order; selection
    /// order is the discipline's business).
    pub fn push(&mut self, pool: &mut PacketPool, pkt: Packet) {
        let idx = pool.alloc(pkt);
        if self.tail == NIL {
            self.head = idx;
        } else {
            pool.slots[self.tail as usize].next = idx;
        }
        self.tail = idx;
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
    }

    /// Choose the packet to transmit this step under `disc` without
    /// mutating anything, or `None` if empty. Ties under
    /// [`Discipline::FurthestFirst`] break toward the earliest arrival
    /// (the chain *is* arrival order, so the first strict maximum wins —
    /// exactly the old `VecDeque` scan's order).
    pub fn select(&self, pool: &PacketPool, disc: Discipline) -> Option<Selection> {
        if self.head == NIL {
            return None;
        }
        match disc {
            Discipline::Fifo => Some(Selection {
                slot: self.head,
                prev: NIL,
            }),
            Discipline::FurthestFirst => {
                let mut best = Selection {
                    slot: self.head,
                    prev: NIL,
                };
                let mut best_priority = pool.pkt(self.head).priority;
                let mut prev = self.head;
                let mut cur = pool.next(self.head);
                while cur != NIL {
                    let p = pool.pkt(cur).priority;
                    if p > best_priority {
                        best = Selection { slot: cur, prev };
                        best_priority = p;
                    }
                    prev = cur;
                    cur = pool.next(cur);
                }
                Some(best)
            }
        }
    }

    /// Extract a previously [`select`](Self::select)ed packet: O(1) chain
    /// unlink, no shifting, slot returned to the pool's free list.
    pub fn commit_pop(&mut self, pool: &mut PacketPool, sel: Selection) -> Packet {
        let Selection { slot, prev } = sel;
        let pkt = *pool.pkt(slot);
        let after = pool.next(slot);
        if prev == NIL {
            self.head = after;
        } else {
            pool.slots[prev as usize].next = after;
        }
        if self.tail == slot {
            self.tail = prev;
        }
        pool.free(slot);
        self.len -= 1;
        self.pops += 1;
        pkt
    }

    /// Select and remove the packet to transmit this step under `disc`,
    /// or `None` if empty.
    pub fn pop(&mut self, pool: &mut PacketPool, disc: Discipline) -> Option<Packet> {
        self.select(pool, disc)
            .map(|sel| self.commit_pop(pool, sel))
    }

    /// Iterate queued packets in arrival order (for inspection/tests).
    pub fn iter<'a>(&'a self, pool: &'a PacketPool) -> impl Iterator<Item = &'a Packet> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let pkt = pool.pkt(cur);
                cur = pool.next(cur);
                Some(pkt)
            }
        })
    }

    /// Remove all packets into `out` in arrival order, freeing the slots.
    pub fn drain_into(&mut self, pool: &mut PacketPool, out: &mut Vec<Packet>) {
        let mut cur = self.head;
        while cur != NIL {
            out.push(*pool.pkt(cur));
            let next = pool.next(cur);
            pool.free(cur);
            cur = next;
        }
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// Remove all packets, returning them in arrival order.
    pub fn drain(&mut self, pool: &mut PacketPool) -> Vec<Packet> {
        let mut out = Vec::with_capacity(self.len());
        self.drain_into(pool, &mut out);
        out
    }

    /// Forget the chain and zero every counter (the pool is cleared
    /// separately — this is the per-link half of `Engine::reset`).
    pub fn reset(&mut self) {
        *self = LinkQueue::new();
    }

    /// Walk this queue's chain, marking each slot in `seen` (the same
    /// bitmap passed to every queue of the pool plus
    /// [`PacketPool::walk_free`], so cycles *and* cross-chain slot
    /// sharing both surface as a revisit). Verifies the walked length
    /// matches `len` and the last slot matches `tail`. Returns the
    /// chain length.
    pub(crate) fn check_chain(
        &self,
        pool: &PacketPool,
        seen: &mut [bool],
    ) -> Result<usize, String> {
        let mut count = 0usize;
        let mut cur = self.head;
        let mut last = NIL;
        while cur != NIL {
            let i = cur as usize;
            if i >= pool.capacity() {
                return Err(format!(
                    "queue chain points at slot {i} beyond capacity {}",
                    pool.capacity()
                ));
            }
            if seen[i] {
                return Err(format!(
                    "slot {i} reached twice (chain cycle or slot shared across chains)"
                ));
            }
            seen[i] = true;
            count += 1;
            last = cur;
            cur = pool.next(cur);
        }
        if count != self.len as usize {
            return Err(format!(
                "queue len counter {} disagrees with walked chain length {count}",
                self.len
            ));
        }
        if last != self.tail {
            return Err(format!(
                "queue tail {} does not terminate the chain (walk ended at {})",
                index_or_nil(self.tail),
                index_or_nil(last)
            ));
        }
        Ok(count)
    }
}

fn index_or_nil(idx: u32) -> String {
    if idx == NIL {
        "NIL".to_string()
    } else {
        idx.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn pkt(id: u32, priority: u32) -> Packet {
        Packet::new(id, 0, 1).with_priority(priority)
    }

    #[test]
    fn fifo_order() {
        let mut pool = PacketPool::new();
        let mut q = LinkQueue::new();
        for i in 0..5 {
            q.push(&mut pool, pkt(i, 100 - i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop(&mut pool, Discipline::Fifo))
            .map(|p| p.id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn furthest_first_order() {
        let mut pool = PacketPool::new();
        let mut q = LinkQueue::new();
        q.push(&mut pool, pkt(0, 3));
        q.push(&mut pool, pkt(1, 9));
        q.push(&mut pool, pkt(2, 9));
        q.push(&mut pool, pkt(3, 1));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop(&mut pool, Discipline::FurthestFirst))
            .map(|p| p.id)
            .collect();
        // 9s first in arrival order, then 3, then 1.
        assert_eq!(order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut pool = PacketPool::new();
        let mut q = LinkQueue::new();
        for i in 0..4 {
            q.push(&mut pool, pkt(i, 0));
        }
        q.pop(&mut pool, Discipline::Fifo);
        q.pop(&mut pool, Discipline::Fifo);
        q.push(&mut pool, pkt(9, 0));
        assert_eq!(q.high_water(), 4);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut pool = PacketPool::new();
        let mut q = LinkQueue::new();
        assert_eq!(q.pop(&mut pool, Discipline::Fifo), None);
        assert_eq!(q.pop(&mut pool, Discipline::FurthestFirst), None);
    }

    #[test]
    fn pops_count_traversals() {
        let mut pool = PacketPool::new();
        let mut q = LinkQueue::new();
        assert_eq!(q.pops(), 0);
        q.pop(&mut pool, Discipline::Fifo); // empty pop does not count
        assert_eq!(q.pops(), 0);
        for i in 0..3 {
            q.push(&mut pool, pkt(i, 0));
        }
        q.pop(&mut pool, Discipline::Fifo);
        q.pop(&mut pool, Discipline::FurthestFirst);
        assert_eq!(q.pops(), 2);
    }

    #[test]
    fn drain_returns_arrival_order() {
        let mut pool = PacketPool::new();
        let mut q = LinkQueue::new();
        q.push(&mut pool, pkt(2, 5));
        q.push(&mut pool, pkt(1, 9));
        let ids: Vec<u32> = q.drain(&mut pool).into_iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![2, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut pool = PacketPool::new();
        let mut q = LinkQueue::new();
        for i in 0..8 {
            q.push(&mut pool, pkt(i, 0));
        }
        let warm = pool.capacity();
        for round in 0..100u32 {
            let p = q.pop(&mut pool, Discipline::Fifo).unwrap();
            q.push(&mut pool, p);
            assert_eq!(pool.capacity(), warm, "round {round} grew the arena");
        }
    }

    #[test]
    fn interleaved_queues_share_one_pool() {
        let mut pool = PacketPool::new();
        let mut a = LinkQueue::new();
        let mut b = LinkQueue::new();
        for i in 0..6 {
            a.push(&mut pool, pkt(i, i));
            b.push(&mut pool, pkt(100 + i, 0));
        }
        a.pop(&mut pool, Discipline::FurthestFirst);
        b.pop(&mut pool, Discipline::Fifo);
        let a_ids: Vec<u32> = a.iter(&pool).map(|p| p.id).collect();
        let b_ids: Vec<u32> = b.iter(&pool).map(|p| p.id).collect();
        assert_eq!(a_ids, vec![0, 1, 2, 3, 4]); // 5 had max priority, gone
        assert_eq!(b_ids, vec![101, 102, 103, 104, 105]);
    }

    /// The old `VecDeque`-based queue, kept as an executable model: max
    /// scan with strict `>` (first maximum wins) plus positional remove.
    struct ModelQueue {
        items: VecDeque<Packet>,
    }

    impl ModelQueue {
        fn pop(&mut self, disc: Discipline) -> Option<Packet> {
            match disc {
                Discipline::Fifo => self.items.pop_front(),
                Discipline::FurthestFirst => {
                    if self.items.is_empty() {
                        return None;
                    }
                    let mut best = 0usize;
                    for i in 1..self.items.len() {
                        if self.items[i].priority > self.items[best].priority {
                            best = i;
                        }
                    }
                    self.items.remove(best)
                }
            }
        }
    }

    /// Satellite pin: the pooled chain queue must reproduce the old
    /// implementation's pop order *exactly* — same `(priority,
    /// arrival)` selection, same tie-breaks — over randomized
    /// push/pop interleavings under both disciplines.
    #[test]
    fn pop_order_pins_old_implementation() {
        for disc in [Discipline::Fifo, Discipline::FurthestFirst] {
            let mut state = 0x5EED_u64 ^ (disc == Discipline::Fifo) as u64;
            let mut pool = PacketPool::new();
            let mut q = LinkQueue::new();
            let mut model = ModelQueue {
                items: VecDeque::new(),
            };
            let mut id = 0u32;
            for _ in 0..2000 {
                let r = lnpram_math::rng::splitmix64(&mut state);
                if !r.is_multiple_of(3) || q.is_empty() {
                    // Small priority range to force plenty of ties.
                    let p = pkt(id, (r >> 8) as u32 % 4);
                    id += 1;
                    q.push(&mut pool, p);
                    model.items.push_back(p);
                } else {
                    let got = q.pop(&mut pool, disc);
                    let want = model.pop(disc);
                    assert_eq!(got, want, "{disc:?} diverged after {id} pushes");
                }
            }
            // Drain both to the end.
            while let Some(want) = model.pop(disc) {
                assert_eq!(q.pop(&mut pool, disc), Some(want));
            }
            assert!(q.is_empty());
        }
    }
}
