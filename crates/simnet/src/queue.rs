//! Per-link output queues and queueing disciplines.
//!
//! The paper assesses routing schemes by routing time, queue size and
//! queueing discipline (§2.2.1). Two disciplines appear:
//!
//! * **FIFO** — used by the universal leveled-network algorithm
//!   (Theorem 2.1 explicitly promises FIFO queues);
//! * **furthest-destination-first** — used by the mesh algorithm (§3.4),
//!   where contention is resolved in favour of the packet with the larger
//!   remaining distance (encoded in [`Packet::priority`]).
//!
//! A [`LinkQueue`] records its own high-water mark so Theorem-level queue
//! bounds (O(ℓ), O(log n), O(1)) can be checked per run.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Queueing discipline for resolving link contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// First-in first-out (paper's preference: simplest hardware).
    #[default]
    Fifo,
    /// Largest [`Packet::priority`] first (furthest-destination-first when
    /// the router sets `priority` to the remaining distance); FIFO among
    /// equals.
    FurthestFirst,
}

/// The output queue of one directed link.
#[derive(Debug, Clone, Default)]
pub struct LinkQueue {
    items: VecDeque<Packet>,
    high_water: usize,
    pops: u32,
}

impl LinkQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest length this queue ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Packets that have traversed this link (successful [`LinkQueue::pop`]
    /// count) — the per-link load used by the congestion tables.
    pub fn pops(&self) -> u32 {
        self.pops
    }

    /// Enqueue a packet (position depends only on arrival order; selection
    /// order is the discipline's business).
    pub fn push(&mut self, pkt: Packet) {
        self.items.push_back(pkt);
        self.high_water = self.high_water.max(self.items.len());
    }

    /// Select and remove the packet to transmit this step under `disc`,
    /// or `None` if empty.
    pub fn pop(&mut self, disc: Discipline) -> Option<Packet> {
        let picked = match disc {
            Discipline::Fifo => self.items.pop_front(),
            Discipline::FurthestFirst => {
                if self.items.is_empty() {
                    return None;
                }
                // Max priority; ties broken by arrival order (stable scan).
                let mut best = 0usize;
                for i in 1..self.items.len() {
                    if self.items[i].priority > self.items[best].priority {
                        best = i;
                    }
                }
                self.items.remove(best)
            }
        };
        if picked.is_some() {
            self.pops += 1;
        }
        picked
    }

    /// Iterate queued packets in arrival order (for inspection/tests).
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.items.iter()
    }

    /// Remove all packets, returning them in arrival order.
    pub fn drain(&mut self) -> Vec<Packet> {
        self.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u32, priority: u32) -> Packet {
        Packet::new(id, 0, 1).with_priority(priority)
    }

    #[test]
    fn fifo_order() {
        let mut q = LinkQueue::new();
        for i in 0..5 {
            q.push(pkt(i, 100 - i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop(Discipline::Fifo))
            .map(|p| p.id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn furthest_first_order() {
        let mut q = LinkQueue::new();
        q.push(pkt(0, 3));
        q.push(pkt(1, 9));
        q.push(pkt(2, 9));
        q.push(pkt(3, 1));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop(Discipline::FurthestFirst))
            .map(|p| p.id)
            .collect();
        // 9s first in arrival order, then 3, then 1.
        assert_eq!(order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = LinkQueue::new();
        for i in 0..4 {
            q.push(pkt(i, 0));
        }
        q.pop(Discipline::Fifo);
        q.pop(Discipline::Fifo);
        q.push(pkt(9, 0));
        assert_eq!(q.high_water(), 4);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut q = LinkQueue::new();
        assert_eq!(q.pop(Discipline::Fifo), None);
        assert_eq!(q.pop(Discipline::FurthestFirst), None);
    }

    #[test]
    fn pops_count_traversals() {
        let mut q = LinkQueue::new();
        assert_eq!(q.pops(), 0);
        q.pop(Discipline::Fifo); // empty pop does not count
        assert_eq!(q.pops(), 0);
        for i in 0..3 {
            q.push(pkt(i, 0));
        }
        q.pop(Discipline::Fifo);
        q.pop(Discipline::FurthestFirst);
        assert_eq!(q.pops(), 2);
    }

    #[test]
    fn drain_returns_arrival_order() {
        let mut q = LinkQueue::new();
        q.push(pkt(2, 5));
        q.push(pkt(1, 9));
        let ids: Vec<u32> = q.drain().into_iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![2, 1]);
        assert!(q.is_empty());
    }
}
