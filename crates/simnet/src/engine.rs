//! The synchronous step engine.
//!
//! One engine **step** is one time unit of the paper's model:
//!
//! 1. *Transmit*: every directed link whose queue is non-empty selects one
//!    packet under the configured [`Discipline`] and moves it to the head
//!    node of the link.
//! 2. *Process*: every arrival is handed to the [`Protocol`], which may
//!    forward it (enqueue on an out-link of the receiving node), deliver
//!    it, absorb it (combining), or emit several packets (reply fan-out).
//!
//! A packet enqueued during step `t` is eligible for transmission at step
//! `t+1`, so an uncongested path of length `L` takes exactly `L` steps.
//!
//! The transmit phase is embarrassingly parallel across links; when the
//! number of active links exceeds [`SimConfig::parallel_threshold`] the
//! engine fans the selection out over scoped threads (disjoint `&mut`
//! queue references are distributed with `split_at_mut`, so this is safe
//! Rust with no locking on the hot path).

use crate::metrics::Metrics;
use crate::packet::Packet;
use crate::protocol::{Outbox, Protocol};
use crate::queue::{Discipline, LinkQueue};
use lnpram_topology::Network;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Queueing discipline for all link queues.
    pub discipline: Discipline,
    /// Abort the run (with `completed = false`) after this many steps.
    /// This is also the emulator's rehash timeout hook.
    pub max_steps: u32,
    /// Use the multi-threaded transmit phase when the number of active
    /// links is at least this value. `usize::MAX` disables parallelism.
    pub parallel_threshold: usize,
    /// Worker threads for the parallel transmit phase.
    pub threads: usize,
    /// Snapshot per-link traversal counts into
    /// [`Metrics::link_loads`](crate::Metrics) at the end of the run (one
    /// `u32` per directed link; off by default to keep big-network trials
    /// allocation-free).
    pub record_link_loads: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            discipline: Discipline::Fifo,
            max_steps: 1_000_000,
            parallel_threshold: usize::MAX,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            record_link_loads: false,
        }
    }
}

impl SimConfig {
    /// Default config with the given discipline.
    pub fn with_discipline(discipline: Discipline) -> Self {
        SimConfig {
            discipline,
            ..Default::default()
        }
    }
}

/// Result of [`Engine::run`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Accumulated metrics.
    pub metrics: Metrics,
    /// `true` if all queues drained; `false` if `max_steps` was hit first
    /// (the emulation layer treats this as a routing-timeout → rehash).
    pub completed: bool,
}

/// The synchronous simulator for one routing run.
pub struct Engine<'n, N: Network + ?Sized> {
    net: &'n N,
    cfg: SimConfig,
    /// CSR offsets: links of node `v` are `link_offset[v] .. link_offset[v+1]`.
    link_offset: Vec<u32>,
    /// Head node of each link.
    link_target: Vec<u32>,
    queues: Vec<LinkQueue>,
    blocked: Vec<bool>,
    /// Link ids with non-empty queues (deduplicated via `in_active`).
    active: Vec<u32>,
    in_active: Vec<bool>,
    in_flight: usize,
    pending: Vec<(usize, Packet)>,
    metrics: Metrics,
}

impl<'n, N: Network + ?Sized> Engine<'n, N> {
    /// Build an engine for `net`.
    pub fn new(net: &'n N, cfg: SimConfig) -> Self {
        let n = net.num_nodes();
        let mut link_offset = Vec::with_capacity(n + 1);
        let mut link_target = Vec::new();
        link_offset.push(0u32);
        for v in 0..n {
            for p in 0..net.out_degree(v) {
                link_target.push(net.neighbor(v, p) as u32);
            }
            link_offset.push(link_target.len() as u32);
        }
        let links = link_target.len();
        Engine {
            net,
            cfg,
            link_offset,
            link_target,
            queues: vec![LinkQueue::new(); links],
            blocked: vec![false; links],
            active: Vec::new(),
            in_active: vec![false; links],
            in_flight: 0,
            pending: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    /// The network being simulated.
    pub fn network(&self) -> &'n N {
        self.net
    }

    /// Link id of `(node, port)`.
    pub fn link_id(&self, node: usize, port: usize) -> usize {
        debug_assert!(port < self.net.out_degree(node));
        self.link_offset[node] as usize + port
    }

    /// Mark a link as failed: packets queue on it but never traverse.
    /// Used by fault-injection tests.
    pub fn block_link(&mut self, node: usize, port: usize) {
        let id = self.link_id(node, port);
        self.blocked[id] = true;
    }

    /// Schedule `pkt` for injection at `node` before the first step.
    pub fn inject(&mut self, node: usize, pkt: Packet) {
        self.pending.push((node, pkt));
    }

    fn enqueue(&mut self, node: usize, port: usize, pkt: Packet) {
        let id = self.link_id(node, port);
        self.queues[id].push(pkt);
        self.in_flight += 1;
        if !self.in_active[id] {
            self.in_active[id] = true;
            self.active.push(id as u32);
        }
    }

    fn apply_outbox(&mut self, node: usize, out: &mut Outbox, step: u32) {
        // Drain without borrowing `out` across the enqueue calls.
        let sends = std::mem::take(&mut out.sends);
        for (port, pkt) in sends {
            assert!(
                port < self.net.out_degree(node),
                "protocol sent on invalid port {port} of node {node}"
            );
            self.enqueue(node, port, pkt);
        }
        for pkt in out.delivered.drain(..) {
            self.metrics.on_delivery(step, pkt.injected_at);
        }
        out.clear();
    }

    /// Run the protocol until all queues drain or `max_steps` elapse.
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunOutcome {
        let mut out = Outbox::default();

        // Step 0: process injections.
        let pending = std::mem::take(&mut self.pending);
        for (node, pkt) in pending {
            proto.on_packet(node, pkt, 0, &mut out);
            self.apply_outbox(node, &mut out, 0);
        }
        proto.on_step_end(0);

        let mut step: u32 = 0;
        let mut arrivals: Vec<(u32, Packet)> = Vec::new();
        let mut batch: Vec<Packet> = Vec::new();
        while self.in_flight > 0 {
            if step >= self.cfg.max_steps {
                let metrics = self.snapshot_metrics(step);
                return RunOutcome {
                    metrics,
                    completed: false,
                };
            }
            step += 1;

            // --- Transmit phase ---
            self.active.sort_unstable();
            arrivals.clear();
            let use_parallel =
                self.cfg.threads > 1 && self.active.len() >= self.cfg.parallel_threshold;
            if use_parallel {
                self.transmit_parallel(&mut arrivals);
            } else {
                self.transmit_serial(&mut arrivals);
            }
            self.in_flight -= arrivals.len();

            // --- Process phase ---
            // Group same-node arrivals so protocols can apply footnote 3's
            // unit-time combining across a step's batch. Stable sort keeps
            // the deterministic link-id order within each node.
            arrivals.sort_by_key(|&(node, _)| node);
            let mut i = 0usize;
            while i < arrivals.len() {
                let node = arrivals[i].0;
                let mut j = i + 1;
                while j < arrivals.len() && arrivals[j].0 == node {
                    j += 1;
                }
                batch.clear();
                batch.extend(arrivals[i..j].iter().map(|&(_, pkt)| pkt));
                proto.on_arrivals(node as usize, &batch, step, &mut out);
                self.apply_outbox(node as usize, &mut out, step);
                i = j;
            }
            proto.on_step_end(step);

            self.metrics.queued_packet_steps += self.in_flight as u64;
        }

        let metrics = self.snapshot_metrics(step);
        RunOutcome {
            metrics,
            completed: true,
        }
    }

    fn transmit_serial(&mut self, arrivals: &mut Vec<(u32, Packet)>) {
        let mut still = Vec::with_capacity(self.active.len());
        let active = std::mem::take(&mut self.active);
        for &id in &active {
            let idx = id as usize;
            if self.blocked[idx] {
                still.push(id); // queue stays, nothing traverses
                continue;
            }
            if let Some(pkt) = self.queues[idx].pop(self.cfg.discipline) {
                arrivals.push((self.link_target[idx], pkt));
            }
            if self.queues[idx].is_empty() {
                self.in_active[idx] = false;
            } else {
                still.push(id);
            }
        }
        self.active = still;
    }

    fn transmit_parallel(&mut self, arrivals: &mut Vec<(u32, Packet)>) {
        // Per-worker output: arrivals as (destination link, packet),
        // still-active link ids, emptied link ids.
        type ChunkResult = (Vec<(u32, Packet)>, Vec<u32>, Vec<u32>);
        // Hand out disjoint &mut queue references in active-id order, then
        // chunk them across scoped threads. `active` is sorted and
        // deduplicated (in_active invariant), so the split walk is valid.
        let discipline = self.cfg.discipline;
        let threads = self.cfg.threads;
        let active = std::mem::take(&mut self.active);
        let mut refs: Vec<(u32, &mut LinkQueue)> = Vec::with_capacity(active.len());
        {
            let mut rest: &mut [LinkQueue] = &mut self.queues;
            let mut base = 0usize;
            for &id in &active {
                let idx = id as usize - base;
                let (_, tail) = rest.split_at_mut(idx);
                let (q, tail2) = tail.split_at_mut(1);
                refs.push((id, &mut q[0]));
                rest = tail2;
                base = id as usize + 1;
            }
        }
        let blocked = &self.blocked;
        let link_target = &self.link_target;
        let chunk = active.len().div_ceil(threads).max(1);
        let results: Vec<ChunkResult> = std::thread::scope(|s| {
            let handles: Vec<_> = refs
                .chunks_mut(chunk)
                .map(|chunk_refs| {
                    s.spawn(move || {
                        let mut arr = Vec::with_capacity(chunk_refs.len());
                        let mut still = Vec::new();
                        let mut emptied = Vec::new();
                        for (id, q) in chunk_refs.iter_mut() {
                            let idx = *id as usize;
                            if blocked[idx] {
                                still.push(*id);
                                continue;
                            }
                            if let Some(pkt) = q.pop(discipline) {
                                arr.push((link_target[idx], pkt));
                            }
                            if q.is_empty() {
                                emptied.push(*id);
                            } else {
                                still.push(*id);
                            }
                        }
                        (arr, still, emptied)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("transmit worker panicked"))
                .collect()
        });
        let mut still_all = Vec::new();
        for (arr, still, emptied) in results {
            arrivals.extend(arr);
            still_all.extend(still);
            for id in emptied {
                self.in_active[id as usize] = false;
            }
        }
        self.active = still_all;
    }

    fn snapshot_metrics(&mut self, steps: u32) -> Metrics {
        self.metrics.steps = steps;
        self.metrics.max_queue = self
            .queues
            .iter()
            .map(|q| q.high_water())
            .max()
            .unwrap_or(0);
        if self.cfg.record_link_loads {
            self.metrics.link_loads = self.queues.iter().map(|q| q.pops()).collect();
        }
        self.metrics.clone()
    }

    /// Per-link traversal counts in link-id order (CSR: links of node `v`
    /// are ports `0..out_degree(v)` in sequence). Available any time,
    /// independent of [`SimConfig::record_link_loads`].
    pub fn link_loads(&self) -> Vec<u32> {
        self.queues.iter().map(|q| q.pops()).collect()
    }

    /// Packets still queued (useful after an incomplete run).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Drain every queue, returning the stranded packets (used by the
    /// retry wrapper of Lemma 2.1 to send unsuccessful packets back).
    pub fn drain_all(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        let active = std::mem::take(&mut self.active);
        for id in active {
            out.extend(self.queues[id as usize].drain());
            self.in_active[id as usize] = false;
        }
        self.in_flight = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use lnpram_topology::graph::ExplicitNetwork;
    use lnpram_topology::Mesh;

    /// Greedy mesh router: first fix column (E/W), then row (N/S).
    struct GreedyMesh {
        mesh: Mesh,
    }

    impl Protocol for GreedyMesh {
        fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
            if node == pkt.dest as usize {
                out.deliver(pkt);
                return;
            }
            let (r, c) = self.mesh.coords(node);
            let (dr, dc) = self.mesh.coords(pkt.dest as usize);
            use lnpram_topology::mesh::Dir;
            let dir = if c < dc {
                Dir::East
            } else if c > dc {
                Dir::West
            } else if r < dr {
                Dir::South
            } else {
                Dir::North
            };
            let port = self.mesh.port_of_dir(node, dir).expect("valid dir");
            out.send(port, pkt);
        }
    }

    #[test]
    fn single_packet_takes_exactly_distance_steps() {
        let mesh = Mesh::square(8);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        let src = mesh.node_at(0, 0);
        let dest = mesh.node_at(5, 7);
        eng.inject(src, Packet::new(0, src as u32, dest as u32));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 1);
        assert_eq!(out.metrics.routing_time as usize, mesh.manhattan(src, dest));
        assert_eq!(out.metrics.max_queue, 1);
    }

    #[test]
    fn self_delivery_at_step_zero() {
        let mesh = Mesh::square(2);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        eng.inject(0, Packet::new(0, 0, 0));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 1);
        assert_eq!(out.metrics.routing_time, 0);
        assert_eq!(out.metrics.steps, 0);
    }

    #[test]
    fn contention_serialises_on_shared_link() {
        // Path graph 0-1-2: both packets from 0 and an injected one at 0
        // headed to 2 must share link (1->2): second is delayed by 1.
        let net = ExplicitNetwork::undirected(3, &[(0, 1), (1, 2)], "path3");
        let mut proto = |node: usize, pkt: Packet, _s: u32, out: &mut Outbox| {
            if node == pkt.dest as usize {
                out.deliver(pkt);
            } else {
                // toward higher node id: port that leads to node+1
                let port = (0..net.out_degree(node))
                    .find(|&p| net.neighbor(node, p) == node + 1)
                    .unwrap();
                out.send(port, pkt);
            }
        };
        let mut eng2 = Engine::new(&net, SimConfig::default());
        eng2.inject(0, Packet::new(0, 0, 2));
        eng2.inject(0, Packet::new(1, 0, 2));
        let out = eng2.run(&mut proto);
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 2);
        // first packet: 2 steps; second: 3 steps (1 delay on link 0->1).
        assert_eq!(out.metrics.routing_time, 3);
        assert_eq!(out.metrics.max_queue, 2);
    }

    #[test]
    fn max_steps_aborts_incomplete() {
        let mesh = Mesh::square(4);
        let cfg = SimConfig {
            max_steps: 2,
            ..Default::default()
        };
        let mut eng = Engine::new(&mesh, cfg);
        let src = mesh.node_at(0, 0);
        let dest = mesh.node_at(3, 3);
        eng.inject(src, Packet::new(0, src as u32, dest as u32));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(!out.completed);
        assert_eq!(out.metrics.delivered, 0);
        assert_eq!(eng.in_flight(), 1);
        let stranded = eng.drain_all();
        assert_eq!(stranded.len(), 1);
        assert_eq!(eng.in_flight(), 0);
    }

    #[test]
    fn blocked_link_strands_packets() {
        let mesh = Mesh::linear(3);
        let mut eng = Engine::new(
            &mesh,
            SimConfig {
                max_steps: 10,
                ..Default::default()
            },
        );
        // Block 0 -> 1 (port of East at node 0).
        let port = mesh
            .port_of_dir(0, lnpram_topology::mesh::Dir::East)
            .unwrap();
        eng.block_link(0, port);
        eng.inject(0, Packet::new(0, 0, 2));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(!out.completed);
        assert_eq!(out.metrics.delivered, 0);
    }

    #[test]
    fn parallel_transmit_matches_serial() {
        // Same workload under serial and parallel transmit must produce
        // identical metrics (per-link selection is order-independent).
        let mesh = Mesh::square(8);
        let mut packets = Vec::new();
        for i in 0..mesh.num_nodes() {
            let dest = (i * 37 + 11) % mesh.num_nodes();
            packets.push((i, Packet::new(i as u32, i as u32, dest as u32)));
        }
        let run = |threshold: usize| {
            let cfg = SimConfig {
                parallel_threshold: threshold,
                threads: 2,
                ..Default::default()
            };
            let mut eng = Engine::new(&mesh, cfg);
            for &(n, p) in &packets {
                eng.inject(n, p);
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            (
                out.metrics.routing_time,
                out.metrics.delivered,
                out.metrics.max_queue,
                out.completed,
            )
        };
        assert_eq!(run(usize::MAX), run(1));
    }

    #[test]
    fn link_loads_recorded_and_identical_across_transmit_modes() {
        let mesh = Mesh::square(6);
        let run = |threshold: usize| {
            let cfg = SimConfig {
                parallel_threshold: threshold,
                threads: 2,
                record_link_loads: true,
                ..Default::default()
            };
            let mut eng = Engine::new(&mesh, cfg);
            for i in 0..mesh.num_nodes() {
                let dest = (i * 17 + 5) % mesh.num_nodes();
                eng.inject(i, Packet::new(i as u32, i as u32, dest as u32));
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            assert!(out.completed);
            out.metrics.link_loads
        };
        let serial = run(usize::MAX);
        let parallel = run(1);
        assert!(!serial.is_empty());
        assert_eq!(
            serial, parallel,
            "pop counting must not depend on threading"
        );
        // Total traversals = sum of every packet's path length ≥ sum of
        // Manhattan distances (greedy takes shortest paths exactly).
        let total: u64 = serial.iter().map(|&l| u64::from(l)).sum();
        let dist: u64 = (0..mesh.num_nodes())
            .map(|i| mesh.manhattan(i, (i * 17 + 5) % mesh.num_nodes()) as u64)
            .sum();
        assert_eq!(total, dist);
    }

    #[test]
    fn link_loads_empty_without_flag() {
        let mesh = Mesh::square(3);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        eng.inject(0, Packet::new(0, 0, 8));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.metrics.link_loads.is_empty());
        // The engine-side accessor still works on demand.
        assert_eq!(
            eng.link_loads().iter().map(|&l| u64::from(l)).sum::<u64>(),
            4
        );
    }

    #[test]
    fn fanout_protocol_duplicates() {
        // A protocol may emit several packets for one arrival (reply
        // fan-out). Inject one packet at the centre; protocol broadcasts to
        // all neighbors, which deliver.
        let mesh = Mesh::square(3);
        let centre = mesh.node_at(1, 1) as u32;
        let mut proto = move |node: usize, pkt: Packet, _s: u32, out: &mut Outbox| {
            if node as u32 == centre && pkt.phase == 0 {
                for port in 0..4 {
                    let mut dup = pkt;
                    dup.phase = 1;
                    dup.id = port as u32;
                    out.send(port, dup);
                }
            } else {
                out.deliver(pkt);
            }
        };
        let mut eng = Engine::new(&mesh, SimConfig::default());
        eng.inject(centre as usize, Packet::new(0, centre, centre));
        let out = eng.run(&mut proto);
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 4);
        assert_eq!(out.metrics.routing_time, 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Conservation: every injected packet is delivered exactly
            /// once (greedy routing on a mesh terminates for any request
            /// multiset), and the routing time is at least the maximum
            /// requested distance.
            #[test]
            fn prop_packet_conservation(
                rows in 2usize..8,
                cols in 2usize..8,
                seed: u64,
                load in 1usize..4,
                furthest: bool,
            ) {
                let mesh = Mesh::new(rows, cols);
                let n = mesh.num_nodes();
                let mut state = seed;
                let mut eng = Engine::new(&mesh, SimConfig {
                    discipline: if furthest {
                        crate::queue::Discipline::FurthestFirst
                    } else {
                        crate::queue::Discipline::Fifo
                    },
                    ..Default::default()
                });
                let mut injected = 0u32;
                let mut max_dist = 0u32;
                for src in 0..n {
                    for _ in 0..load {
                        let dest = (lnpram_math::rng::splitmix64(&mut state) as usize) % n;
                        eng.inject(src, Packet::new(injected, src as u32, dest as u32));
                        injected += 1;
                        max_dist = max_dist.max(mesh.manhattan(src, dest) as u32);
                    }
                }
                let out = eng.run(&mut GreedyMesh { mesh });
                prop_assert!(out.completed);
                prop_assert_eq!(out.metrics.delivered as u32, injected);
                prop_assert!(out.metrics.routing_time >= max_dist);
                prop_assert_eq!(eng.in_flight(), 0);
            }

            /// Engine determinism: identical injections give identical
            /// metrics regardless of the parallel-transmit threshold.
            #[test]
            fn prop_parallel_equals_serial(seed: u64, rows in 2usize..7) {
                let mesh = Mesh::square(rows * 2);
                let n = mesh.num_nodes();
                let run = |threshold: usize| {
                    let mut eng = Engine::new(&mesh, SimConfig {
                        parallel_threshold: threshold,
                        threads: 2,
                        ..Default::default()
                    });
                    let mut state = seed;
                    for src in 0..n {
                        let dest = (lnpram_math::rng::splitmix64(&mut state) as usize) % n;
                        eng.inject(src, Packet::new(src as u32, src as u32, dest as u32));
                    }
                    let out = eng.run(&mut GreedyMesh { mesh });
                    (
                        out.metrics.routing_time,
                        out.metrics.delivered,
                        out.metrics.max_queue,
                        out.metrics.queued_packet_steps,
                    )
                };
                prop_assert_eq!(run(usize::MAX), run(1));
            }
        }
    }

    #[test]
    fn queue_occupancy_accounting() {
        let net = ExplicitNetwork::undirected(2, &[(0, 1)], "edge");
        let mut eng = Engine::new(&net, SimConfig::default());
        for i in 0..3 {
            eng.inject(0, Packet::new(i, 0, 1));
        }
        let mut proto = |node: usize, pkt: Packet, _s: u32, out: &mut Outbox| {
            if node == 1 {
                out.deliver(pkt);
            } else {
                out.send(0, pkt);
            }
        };
        let out = eng.run(&mut proto);
        // 3 packets over one link: delivered at steps 1,2,3.
        assert_eq!(out.metrics.routing_time, 3);
        // queue holds 2 after step 1, 1 after step 2, 0 after step 3.
        assert_eq!(out.metrics.queued_packet_steps, 3);
        assert!((out.metrics.mean_queue_occupancy() - 1.0).abs() < 1e-12);
    }
}
