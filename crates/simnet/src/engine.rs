//! The synchronous step engine.
//!
//! One engine **step** is one time unit of the paper's model:
//!
//! 1. *Transmit*: every directed link whose queue is non-empty selects one
//!    packet under the configured [`Discipline`] and moves it to the head
//!    node of the link.
//! 2. *Process*: every arrival is handed to the [`Protocol`], which may
//!    forward it (enqueue on an out-link of the receiving node), deliver
//!    it, absorb it (combining), or emit several packets (reply fan-out).
//!
//! A packet enqueued during step `t` is eligible for transmission at step
//! `t+1`, so an uncongested path of length `L` takes exactly `L` steps.
//!
//! # Internals: allocation-free stepping
//!
//! The engine snapshots the network's adjacency into CSR arrays at
//! construction (`link_offset`/`link_target`), so it owns its topology
//! and borrows nothing — an `Engine` can be stored next to the network
//! it simulates and reused across runs.
//!
//! All queued packets live in one slab arena ([`PacketPool`]): a link
//! queue is a pair of `u32` chain indices, enqueue recycles a free-list
//! slot, and pop is an O(1) unlink — after warm-up the step loop performs
//! **zero heap allocation**:
//!
//! * the [`Outbox`] is drained in place (its buffers are reused for every
//!   callback);
//! * arrivals are grouped by destination node with a reusable
//!   bucket-chain scratch (a counting sort over touched nodes) instead of
//!   a per-step `sort_by_key`;
//! * the `active` link list is kept sorted incrementally — the transmit
//!   phase preserves order and newly activated links are merged in — so
//!   no per-step re-sort is needed;
//! * run state (queues, arena, metrics, scratch) is recycled by
//!   [`Engine::reset`], so a T-step emulation reuses one engine instead
//!   of building per-link state T times.
//!
//! The transmit phase is embarrassingly parallel across links; when the
//! number of active links is at least [`SimConfig::parallel_threshold`]
//! the engine fans the *selection* scans out over a persistent
//! [`WorkerPool`](crate::worker) whose threads park between steps, then
//! commits the extractions serially in active order — so the arrival
//! sequence is bit-identical to the serial path (the determinism
//! contract `prop_parallel_equals_serial` pins).

use crate::fault::{FaultError, FaultPlan, FaultSchedule};
use crate::metrics::Metrics;
use crate::packet::Packet;
use crate::protocol::{Outbox, Protocol};
use crate::queue::{Discipline, LinkQueue, PacketPool, Selection, NIL};
use crate::trace::{NoopSink, Phase, StepSample, TraceSink};
use crate::worker::WorkerPool;
use lnpram_topology::Network;
use std::sync::{Mutex, OnceLock};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Queueing discipline for all link queues.
    pub discipline: Discipline,
    /// Abort the run (with `completed = false`) after this many steps.
    /// This is also the emulator's rehash timeout hook.
    pub max_steps: u32,
    /// Use the multi-threaded transmit phase when the number of active
    /// links is at least this value. `usize::MAX` disables parallelism.
    pub parallel_threshold: usize,
    /// Worker threads for the parallel transmit phase.
    pub threads: usize,
    /// Snapshot per-link traversal counts into
    /// [`Metrics::link_loads`](crate::Metrics) at the end of the run (one
    /// `u32` per directed link; off by default to keep big-network trials
    /// allocation-free).
    pub record_link_loads: bool,
    /// Number of partitions for the sharded simulation subsystem
    /// (`lnpram-shard`). The `Engine` itself ignores this field: it is a
    /// construction knob consumed by `AnyEngine::new` and the emulators —
    /// `0` or `1` selects the single serial engine, `k ≥ 2` splits the
    /// network into `k` shards stepped in lockstep with deterministic
    /// boundary exchange (bit-identical outcomes, pinned by the
    /// `lnpram-shard` property tests). Values above `lnpram-shard`'s
    /// `MAX_SHARDS` (15, the packed-coordinate cap) or above the node
    /// count of the network being simulated are clamped.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            discipline: Discipline::Fifo,
            max_steps: 1_000_000,
            parallel_threshold: usize::MAX,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            record_link_loads: false,
            shards: 0,
        }
    }
}

impl SimConfig {
    /// Default config with the given discipline.
    pub fn with_discipline(discipline: Discipline) -> Self {
        SimConfig {
            discipline,
            ..Default::default()
        }
    }
}

/// Result of [`Engine::run`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Accumulated metrics (moved out of the engine, not cloned).
    pub metrics: Metrics,
    /// `true` if all queues drained; `false` if `max_steps` was hit first
    /// (the emulation layer treats this as a routing-timeout → rehash).
    pub completed: bool,
}

/// A broken internal-state invariant found by
/// [`Engine::check_invariants`] — which invariant, and the observed
/// state that contradicts it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant broke and the observed contradicting state.
    pub what: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.what)
    }
}

impl std::error::Error for InvariantViolation {}

/// Should every step boundary re-verify the engine invariants?
/// Controlled by `LNPRAM_CHECK_INVARIANTS=1` (any build profile, read
/// once per process), so the chaos-smoke CI job can run release
/// benches with state checking on while the default hot path pays one
/// cached boolean load.
pub(crate) fn invariant_checks_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("LNPRAM_CHECK_INVARIANTS").is_some_and(|v| v == "1"))
}

/// The synchronous simulator for one network.
///
/// The engine owns a CSR copy of the adjacency, so it has no borrow of
/// the network and no type parameter: emulators store one engine per
/// routing direction and recycle it across rounds with
/// [`Engine::reset`].
pub struct Engine {
    cfg: SimConfig,
    /// CSR offsets: links of node `v` are `link_offset[v] .. link_offset[v+1]`.
    link_offset: Vec<u32>,
    /// Head node of each link.
    link_target: Vec<u32>,
    queues: Vec<LinkQueue>,
    pool: PacketPool,
    blocked: Vec<bool>,
    /// Any link ever blocked since the last reset (skips the `blocked`
    /// wipe on reset for the common fault-free case).
    blocked_any: bool,
    /// Installed fault schedule, advanced at the start of every
    /// transmit phase; cleared by [`Engine::reset`].
    faults: Option<Box<FaultSchedule>>,
    /// Transmit phases since the last reset — the global step the fault
    /// schedule is keyed on (transmit of step `s` runs at clock `s`).
    clock: u32,
    /// Link ids with non-empty queues, ascending (deduplicated via
    /// `in_active`, order maintained incrementally).
    active: Vec<u32>,
    in_active: Vec<bool>,
    /// Links whose queue has been touched since the last reset
    /// (deduplicated via `ever_active`): [`Engine::reset`] wipes only
    /// these, making reset O(touched links) instead of O(links).
    dirty: Vec<u32>,
    ever_active: Vec<bool>,
    in_flight: usize,
    pending: Vec<(usize, Packet)>,
    metrics: Metrics,
    /// Length of the sorted prefix of `active` after the last transmit
    /// phase ([`Engine::step_finish`] restores order from here).
    sorted_len: usize,
    // --- reusable per-step scratch (never reallocated after warm-up) ---
    /// This step's arrivals as `(link id, packet)`, active order (the
    /// destination node is `link_target[link id]`). Keeping the link id
    /// instead of the target lets external coordinators (`lnpram-shard`)
    /// merge arrivals across shards by global link id.
    arrivals: Vec<(u32, Packet)>,
    /// Bucket chains over `arrivals` (same length), per destination node.
    arrival_next: Vec<u32>,
    /// Per-node chain heads/tails into `arrivals`; `NIL` = untouched.
    node_head: Vec<u32>,
    node_tail: Vec<u32>,
    /// Nodes with at least one arrival this step.
    touched: Vec<u32>,
    /// One node's arrival batch, rebuilt per node.
    batch: Vec<Packet>,
    /// Swap buffer for `active` (still-active lists, merge output).
    scratch: Vec<u32>,
    // --- parallel transmit machinery, created on first use ---
    workers: Option<WorkerPool>,
    /// Per-worker selection buffers, aligned with chunks of `active`
    /// (`None` = blocked link, nothing transmits).
    worker_out: Vec<Mutex<Vec<Option<Selection>>>>,
}

impl Engine {
    /// Build an engine for `net` (the adjacency is copied; the engine
    /// keeps no reference to `net`).
    pub fn new<N: Network + ?Sized>(net: &N, cfg: SimConfig) -> Self {
        let n = net.num_nodes();
        let mut link_offset = Vec::with_capacity(n + 1);
        let mut link_target = Vec::new();
        link_offset.push(0u32);
        for v in 0..n {
            for p in 0..net.out_degree(v) {
                link_target.push(net.neighbor(v, p) as u32);
            }
            link_offset.push(link_target.len() as u32);
        }
        let links = link_target.len();
        Engine {
            cfg,
            link_offset,
            link_target,
            queues: vec![LinkQueue::new(); links],
            pool: PacketPool::new(),
            blocked: vec![false; links],
            blocked_any: false,
            faults: None,
            clock: 0,
            active: Vec::new(),
            in_active: vec![false; links],
            dirty: Vec::new(),
            ever_active: vec![false; links],
            in_flight: 0,
            pending: Vec::new(),
            metrics: Metrics::default(),
            sorted_len: 0,
            arrivals: Vec::new(),
            arrival_next: Vec::new(),
            node_head: vec![NIL; n],
            node_tail: vec![NIL; n],
            touched: Vec::new(),
            batch: Vec::new(),
            scratch: Vec::new(),
            workers: None,
            worker_out: Vec::new(),
        }
    }

    /// Number of nodes in the simulated network.
    pub fn num_nodes(&self) -> usize {
        self.link_offset.len() - 1
    }

    fn out_degree(&self, node: usize) -> usize {
        (self.link_offset[node + 1] - self.link_offset[node]) as usize
    }

    /// Link id of `(node, port)`.
    pub fn link_id(&self, node: usize, port: usize) -> usize {
        debug_assert!(port < self.out_degree(node));
        self.link_offset[node] as usize + port
    }

    /// Mark a link as failed: packets queue on it but never traverse.
    /// Used by fault-injection tests.
    pub fn block_link(&mut self, node: usize, port: usize) {
        let id = self.link_id(node, port);
        self.blocked[id] = true;
        self.blocked_any = true;
    }

    /// Set the blocked state of a link by id. This is the raw knob the
    /// sharded coordinator uses to forward fault-schedule updates onto
    /// the shard that owns the link; [`Engine::block_link`] is the
    /// `(node, port)` convenience over it.
    pub fn set_link_blocked(&mut self, link: usize, blocked: bool) {
        self.blocked[link] = blocked;
        self.blocked_any |= blocked;
    }

    /// Install a deterministic fault schedule (validated against this
    /// engine's topology). The schedule's events are applied at the
    /// start of each transmit phase, keyed on the step count since the
    /// last [`Engine::reset`]; `reset` clears the plan, so a recycled
    /// engine always starts fault-free.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        let sched = FaultSchedule::build(plan, &self.link_offset, &self.link_target)?;
        self.faults = Some(Box::new(sched));
        // Whatever the schedule blocks must be wiped on reset.
        self.blocked_any = true;
        Ok(())
    }

    /// Override the step budget (emulators vary it per phase/attempt
    /// while reusing one engine).
    pub fn set_max_steps(&mut self, max_steps: u32) {
        self.cfg.max_steps = max_steps;
    }

    /// Restore the engine to its just-built state — empty queues, zeroed
    /// counters and metrics, no blocked links — while keeping every
    /// allocation (arena, scratch, worker pool) warm. Reusing one engine
    /// via `reset` makes a T-step emulation build its per-link state once
    /// instead of T times.
    pub fn reset(&mut self) {
        // Only touched queues need wiping (untouched ones are pristine):
        // reset cost scales with the traffic, not the network size.
        for &id in &self.dirty {
            self.queues[id as usize].reset();
            self.in_active[id as usize] = false;
            self.ever_active[id as usize] = false;
        }
        self.dirty.clear();
        self.pool.clear();
        if self.blocked_any {
            self.blocked.fill(false);
            self.blocked_any = false;
        }
        self.active.clear();
        self.in_flight = 0;
        self.pending.clear();
        self.sorted_len = 0;
        self.metrics = Metrics::default();
        self.faults = None;
        self.clock = 0;
    }

    /// Schedule `pkt` for injection at `node` before the first step.
    pub fn inject(&mut self, node: usize, pkt: Packet) {
        self.pending.push((node, pkt));
    }

    fn enqueue(&mut self, node: usize, port: usize, pkt: Packet) {
        let id = self.link_id(node, port);
        self.queues[id].push(&mut self.pool, pkt);
        self.in_flight += 1;
        if !self.in_active[id] {
            self.in_active[id] = true;
            self.active.push(id as u32);
            if !self.ever_active[id] {
                self.ever_active[id] = true;
                self.dirty.push(id as u32);
            }
        }
    }

    fn apply_outbox(&mut self, node: usize, out: &mut Outbox, step: u32) {
        // Drain in place: `out`'s buffers are distinct from `self`, so the
        // sends can be walked while enqueueing, and `clear()` keeps the
        // capacity for the next callback (no per-callback allocation).
        let mut i = 0;
        while i < out.sends.len() {
            let (port, pkt) = out.sends[i];
            assert!(
                port < self.out_degree(node),
                "protocol sent on invalid port {port} of node {node}"
            );
            self.enqueue(node, port, pkt);
            i += 1;
        }
        for pkt in &out.delivered {
            self.metrics.on_delivery(step, pkt.injected_at);
        }
        out.clear();
    }

    /// Re-establish ascending order of `active` after appends beyond
    /// `sorted_len` (the prefix is already sorted; the suffix holds the
    /// links activated since). Sorts only the suffix and merges — the
    /// per-step full re-sort this replaces is gone.
    fn restore_active_order(&mut self, sorted_len: usize) {
        if self.active.len() == sorted_len {
            return;
        }
        let (prefix, suffix) = self.active.split_at_mut(sorted_len);
        suffix.sort_unstable();
        if sorted_len == 0 || prefix[sorted_len - 1] < suffix[0] {
            return; // concatenation is already sorted
        }
        self.scratch.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < prefix.len() && j < suffix.len() {
            if prefix[i] < suffix[j] {
                self.scratch.push(prefix[i]);
                i += 1;
            } else {
                self.scratch.push(suffix[j]);
                j += 1;
            }
        }
        self.scratch.extend_from_slice(&prefix[i..]);
        self.scratch.extend_from_slice(&suffix[j..]);
        std::mem::swap(&mut self.active, &mut self.scratch);
    }

    /// Run the protocol until all queues drain or `max_steps` elapse.
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunOutcome {
        self.run_traced(proto, &mut NoopSink)
    }

    /// [`Engine::run`] reporting to a [`TraceSink`]. With [`NoopSink`]
    /// this monomorphizes to exactly the untraced loop (every callback
    /// is an empty `#[inline]` body and the sample-assembly block is
    /// gated on a compile-time-`false` `enabled()`).
    pub fn run_traced<P: Protocol, S: TraceSink + ?Sized>(
        &mut self,
        proto: &mut P,
        sink: &mut S,
    ) -> RunOutcome {
        let mut out = Outbox::default();
        let before = self.metrics.delivered;

        // Step 0: process injections (drained in place, buffer kept).
        sink.on_phase_start(Phase::Process);
        self.process_pending(proto, 0, &mut out);
        sink.on_phase_end(Phase::Process);
        self.step_finish();
        proto.on_step_end(0);
        let mut last_delivered = self.metrics.delivered;
        if sink.enabled() {
            sink.on_step_end(&StepSample {
                step: 0,
                in_flight: self.in_flight,
                arrivals: 0,
                deliveries: last_delivered - before,
                max_queue_len: self.max_queue_len(),
                backlog: 0,
            });
        }

        let mut step: u32 = 0;
        while self.in_flight > 0 {
            if step >= self.cfg.max_steps {
                return RunOutcome {
                    metrics: self.finish_metrics(step),
                    completed: false,
                };
            }
            step += 1;
            sink.on_step_begin(step);

            self.step_transmit_traced(sink);
            sink.on_phase_start(Phase::Process);
            self.process_arrivals(proto, step, &mut out);
            sink.on_phase_end(Phase::Process);
            proto.on_step_end(step);
            self.step_finish();
            self.note_queued_step();
            if sink.enabled() {
                let delivered = self.metrics.delivered;
                sink.on_step_end(&StepSample {
                    step,
                    in_flight: self.in_flight,
                    arrivals: self.arrivals.len(),
                    deliveries: delivered - last_delivered,
                    max_queue_len: self.max_queue_len(),
                    backlog: 0,
                });
                last_delivered = delivered;
            }
        }

        RunOutcome {
            metrics: self.finish_metrics(step),
            completed: true,
        }
    }

    /// Feed every pending injection ([`Engine::inject`]) to the protocol
    /// at `step`, applying the responses. Each packet's `injected_at` is
    /// stamped with `step` on the way in, so latency histograms measure
    /// admission-to-delivery time even for packets admitted mid-run (the
    /// serve loop's streaming admission). `run` calls this once with
    /// `step = 0`; external drivers may call it at any step boundary —
    /// enqueued forwards become eligible to traverse links at `step + 1`.
    pub fn process_pending<P: Protocol>(&mut self, proto: &mut P, step: u32, out: &mut Outbox) {
        let mut i = 0;
        while i < self.pending.len() {
            let (node, mut pkt) = self.pending[i];
            pkt.injected_at = step;
            proto.on_packet(node, pkt, step, out);
            self.apply_outbox(node, out, step);
            i += 1;
        }
        self.pending.clear();
    }

    /// Process this step's arrivals ([`Engine::step_transmit`]'s output)
    /// through the protocol, applying the responses.
    ///
    /// Groups same-node arrivals so protocols can apply footnote 3's
    /// unit-time combining across a step's batch. The bucket chains
    /// keep the deterministic link-id order within each node, and
    /// nodes are visited in ascending id — the same order the old
    /// stable sort produced, without moving any packet.
    pub fn process_arrivals<P: Protocol>(&mut self, proto: &mut P, step: u32, out: &mut Outbox) {
        self.arrival_next.clear();
        self.arrival_next.resize(self.arrivals.len(), NIL);
        for a in 0..self.arrivals.len() {
            let node = self.link_target[self.arrivals[a].0 as usize] as usize;
            if self.node_head[node] == NIL {
                self.node_head[node] = a as u32;
                self.touched.push(node as u32);
            } else {
                self.arrival_next[self.node_tail[node] as usize] = a as u32;
            }
            self.node_tail[node] = a as u32;
        }
        self.touched.sort_unstable();
        for t in 0..self.touched.len() {
            let node = self.touched[t] as usize;
            self.batch.clear();
            let mut a = self.node_head[node];
            while a != NIL {
                self.batch.push(self.arrivals[a as usize].1);
                a = self.arrival_next[a as usize];
            }
            self.node_head[node] = NIL;
            let batch = std::mem::take(&mut self.batch);
            proto.on_arrivals(node, &batch, step, out);
            self.batch = batch;
            self.apply_outbox(node, out, step);
        }
        self.touched.clear();
    }

    /// End-of-step occupancy accounting: charge every still-queued packet
    /// one packet-step (`run` does this after each step; external drivers
    /// replaying the loop call it after [`Engine::step_finish`]).
    pub fn note_queued_step(&mut self) {
        self.metrics.queued_packet_steps += self.in_flight as u64;
    }

    // ------------------------------------------------------------------
    // Phase-level stepping API
    //
    // `run` is the whole step loop; the methods below expose its two
    // halves individually so an external coordinator can interleave
    // engines. This is the interface the sharded subsystem
    // (`lnpram-shard`) is built on: each shard engine transmits its own
    // links, the coordinator merges the arrivals across shards (by
    // global link id), drives the protocol itself, enqueues the
    // responses back with [`Engine::enqueue_direct`], and closes the
    // step with [`Engine::step_finish`]. Driving one engine through
    // `step_transmit` / `enqueue_direct` / `step_finish` replays
    // exactly what `run` does internally.
    // ------------------------------------------------------------------

    /// Run one transmit phase: every active link selects and extracts at
    /// most one packet under the configured discipline (parallel fan-out
    /// per [`SimConfig::parallel_threshold`], same as `run`). The
    /// extracted packets are readable via [`Engine::arrivals`] until the
    /// next transmit; the in-flight count is decremented here.
    pub fn step_transmit(&mut self) {
        self.step_transmit_traced(&mut NoopSink);
    }

    /// [`Engine::step_transmit`] reporting fault applications, the
    /// transmit phase window and the arrival count to a [`TraceSink`]
    /// (compiles to the untraced phase under [`NoopSink`]).
    pub fn step_transmit_traced<S: TraceSink + ?Sized>(&mut self, sink: &mut S) {
        self.clock += 1;
        if let Some(faults) = &mut self.faults {
            let blocked = &mut self.blocked;
            let clock = self.clock;
            if sink.enabled() {
                faults.advance(clock, |l, b| {
                    blocked[l] = b;
                    sink.on_fault(clock, l, b);
                });
            } else {
                faults.advance(clock, |l, b| blocked[l] = b);
            }
        }
        sink.on_phase_start(Phase::Transmit);
        self.arrivals.clear();
        let use_parallel = self.cfg.threads > 1 && self.active.len() >= self.cfg.parallel_threshold;
        if use_parallel {
            self.transmit_parallel();
        } else {
            self.transmit_serial();
        }
        self.in_flight -= self.arrivals.len();
        self.sorted_len = self.active.len();
        sink.on_phase_end(Phase::Transmit);
        sink.on_transmit(self.clock, self.arrivals.len());
    }

    /// This step's extracted packets as `(link id, packet)` in ascending
    /// link-id order — the deterministic transmit order. Valid between
    /// [`Engine::step_transmit`] and the next transmit or reset.
    pub fn arrivals(&self) -> &[(u32, Packet)] {
        &self.arrivals
    }

    /// Swap this step's arrivals buffer with `buf` (zero-copy hand-off
    /// to an external coordinator). The engine clears whatever buffer it
    /// holds at the start of the next transmit, so the swapped-in vector
    /// may contain anything; the caller owns the swapped-out arrivals
    /// until it hands a buffer back.
    pub fn swap_arrivals(&mut self, buf: &mut Vec<(u32, Packet)>) {
        std::mem::swap(&mut self.arrivals, buf);
    }

    /// Head node of `link` — where its queued packets arrive.
    pub fn link_target(&self, link: usize) -> usize {
        self.link_target[link] as usize
    }

    /// Total number of directed links (valid link ids are `0..num_links`).
    pub fn num_links(&self) -> usize {
        self.link_target.len()
    }

    /// Number of links with a non-empty queue right now.
    pub fn active_links(&self) -> usize {
        self.active.len()
    }

    /// Enqueue `pkt` on `(node, port)` immediately (no protocol callback)
    /// — the coordinator-side counterpart of a protocol `send` during the
    /// process phase. The packet becomes eligible to traverse the link
    /// from the next transmit phase on.
    pub fn enqueue_direct(&mut self, node: usize, port: usize, pkt: Packet) {
        assert!(
            port < self.out_degree(node),
            "enqueue_direct on invalid port {port} of node {node}"
        );
        self.enqueue(node, port, pkt);
    }

    /// End-of-step bookkeeping for coordinator-driven stepping: restore
    /// the ascending order of the active-link list after the process
    /// phase's enqueues (mirrors what `run` does after each step).
    pub fn step_finish(&mut self) {
        self.restore_active_order(self.sorted_len);
        if invariant_checks_enabled() {
            if let Err(v) = self.check_invariants() {
                panic!("engine invariant violated at step boundary: {v}");
            }
        }
    }

    /// Verify the engine's internal-state invariants. Intended at step
    /// boundaries (after [`Engine::step_finish`] / between
    /// [`Engine::run`] steps); the property tests call it directly, and
    /// `LNPRAM_CHECK_INVARIANTS=1` makes every step boundary check it
    /// automatically (any build profile — the chaos-smoke CI job runs
    /// the degraded-serve bench this way once).
    ///
    /// Checked:
    /// * every link queue's chain is acyclic, shares no slot with any
    ///   other chain or the free list, and agrees with its `len`/`tail`
    ///   counters;
    /// * the pool free list is acyclic and in range;
    /// * slot conservation: free slots + queued packets == arena
    ///   capacity (no leaked or double-owned slots);
    /// * packet conservation: `in_flight` == total queued packets;
    /// * the active-link list is strictly ascending, agrees with the
    ///   `in_active` bitmap, and covers exactly the non-empty queues
    ///   (modulo blocked links, which may stay listed while empty);
    /// * untouched links (never enqueued since reset) have empty queues.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |what: String| Err(InvariantViolation { what });

        // Chain walks share one seen-bitmap, so a slot reachable from
        // two places (two queues, or a queue and the free list) is
        // reported no matter which walk gets there second.
        let mut seen = vec![false; self.pool.capacity()];
        let mut total_queued = 0usize;
        for (id, q) in self.queues.iter().enumerate() {
            match q.check_chain(&self.pool, &mut seen) {
                Ok(n) => total_queued += n,
                Err(e) => return fail(format!("link {id}: {e}")),
            }
        }
        let free = match self.pool.walk_free(&mut seen) {
            Ok(n) => n,
            Err(e) => return fail(format!("packet pool: {e}")),
        };
        if free + total_queued != self.pool.capacity() {
            return fail(format!(
                "slot conservation: {free} free + {total_queued} queued != arena capacity {}",
                self.pool.capacity()
            ));
        }
        if self.in_flight != total_queued {
            return fail(format!(
                "packet conservation: in_flight counter {} != {total_queued} queued packets",
                self.in_flight
            ));
        }

        // Active-list shape: strictly ascending link ids, bitmap
        // agreement, and exactly the non-empty queues (a blocked link
        // may legitimately linger while empty).
        let mut prev: Option<u32> = None;
        for &id in &self.active {
            let idx = id as usize;
            if idx >= self.queues.len() {
                return fail(format!("active list holds out-of-range link {id}"));
            }
            if prev.is_some_and(|p| p >= id) {
                return fail(format!(
                    "active list not strictly ascending at link {id} (prev {})",
                    prev.unwrap_or(0)
                ));
            }
            prev = Some(id);
            if !self.in_active[idx] {
                return fail(format!(
                    "active list holds link {id} but in_active[{id}] is false"
                ));
            }
            if self.queues[idx].is_empty() && !self.blocked[idx] {
                return fail(format!("active list holds link {id} whose queue is empty"));
            }
        }
        let listed = self.active.len();
        let flagged = self.in_active.iter().filter(|&&b| b).count();
        if listed != flagged {
            return fail(format!(
                "in_active flags {flagged} links but the active list holds {listed}"
            ));
        }
        for (id, q) in self.queues.iter().enumerate() {
            if !q.is_empty() {
                if !self.in_active[id] {
                    return fail(format!(
                        "link {id} has {} queued packet(s) but is not active-listed",
                        q.len()
                    ));
                }
                if !self.ever_active[id] {
                    return fail(format!(
                        "link {id} has queued packets but was never marked touched \
                         (reset would leak them)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Largest length any link queue has reached since construction or
    /// the last [`Engine::reset`] (the `max_queue` metric). Scans only
    /// the touched queues — untouched ones never left zero.
    pub fn queue_high_water(&self) -> usize {
        self.dirty
            .iter()
            .map(|&id| self.queues[id as usize].high_water())
            .max()
            .unwrap_or(0)
    }

    fn transmit_serial(&mut self) {
        self.scratch.clear();
        let disc = self.cfg.discipline;
        let mut i = 0;
        while i < self.active.len() {
            let id = self.active[i];
            i += 1;
            let idx = id as usize;
            if self.blocked[idx] {
                self.scratch.push(id); // queue stays, nothing traverses
                continue;
            }
            if let Some(pkt) = self.queues[idx].pop(&mut self.pool, disc) {
                self.arrivals.push((id, pkt));
            }
            if self.queues[idx].is_empty() {
                self.in_active[idx] = false;
            } else {
                self.scratch.push(id);
            }
        }
        std::mem::swap(&mut self.active, &mut self.scratch);
    }

    fn transmit_parallel(&mut self) {
        // Selection (the per-queue scan) fans out across the persistent
        // workers; extraction commits serially in active order below, so
        // arrivals and queue mutations are identical to the serial path.
        if self.workers.is_none() {
            let pool = WorkerPool::new(self.cfg.threads.max(2));
            self.worker_out = (0..pool.threads())
                .map(|_| Mutex::new(Vec::new()))
                .collect();
            self.workers = Some(pool);
        }
        let workers = self.workers.as_ref().expect("worker pool initialised");
        let chunk = self.active.len().div_ceil(workers.threads()).max(1);
        {
            let active = &self.active;
            let queues = &self.queues;
            let pool = &self.pool;
            let blocked = &self.blocked;
            let disc = self.cfg.discipline;
            let out_ref = &self.worker_out;
            workers.run(&move |w: usize| {
                let mut buf = out_ref[w].lock().expect("worker buffer");
                buf.clear();
                let lo = (w * chunk).min(active.len());
                let hi = (lo + chunk).min(active.len());
                for &id in &active[lo..hi] {
                    let idx = id as usize;
                    buf.push(if blocked[idx] {
                        None
                    } else {
                        queues[idx].select(pool, disc)
                    });
                }
            });
        }
        self.scratch.clear();
        let mut pos = 0usize;
        for w in 0..self.worker_out.len() {
            // Move each buffer out of its mutex so the engine can be
            // mutated while walking it, then hand the allocation back.
            let buf = std::mem::take(&mut *self.worker_out[w].lock().expect("worker buffer"));
            for &sel in buf.iter() {
                let id = self.active[pos];
                pos += 1;
                let idx = id as usize;
                match sel {
                    None => self.scratch.push(id), // blocked
                    Some(sel) => {
                        let pkt = self.queues[idx].commit_pop(&mut self.pool, sel);
                        self.arrivals.push((id, pkt));
                        if self.queues[idx].is_empty() {
                            self.in_active[idx] = false;
                        } else {
                            self.scratch.push(id);
                        }
                    }
                }
            }
            *self.worker_out[w].lock().expect("worker buffer") = buf;
        }
        debug_assert_eq!(pos, self.active.len(), "every active link decided");
        std::mem::swap(&mut self.active, &mut self.scratch);
    }

    /// Largest current occupancy over all link queues (0 when idle).
    /// Unlike [`Engine::queue_high_water`] — which is monotone since the
    /// last reset — this reflects the instantaneous state, so a long-lived
    /// serve loop can use it as a backpressure watermark that clears once
    /// congestion drains. Scans only the currently active links.
    pub fn max_queue_len(&self) -> usize {
        self.active
            .iter()
            .map(|&id| self.queues[id as usize].len())
            .max()
            .unwrap_or(0)
    }

    /// Take back the not-yet-processed injections queued by
    /// [`Engine::inject`] without running any protocol callback. Lets a
    /// driver use a backend's injection routine as a packet *materialiser*
    /// (inject → take) and re-inject the packets at a later admission
    /// step.
    pub fn take_pending(&mut self) -> Vec<(usize, Packet)> {
        std::mem::take(&mut self.pending)
    }

    /// Finalise and move the accumulated metrics out (no clone — the
    /// engine's metrics are left fresh for the next run). `run` calls
    /// this at termination; external drivers replaying the step loop call
    /// it with the number of steps they executed.
    pub fn finish_metrics(&mut self, steps: u32) -> Metrics {
        self.metrics.steps = steps;
        self.metrics.max_queue = self.queue_high_water();
        if self.cfg.record_link_loads {
            self.metrics.link_loads = self.queues.iter().map(|q| q.pops()).collect();
        }
        std::mem::take(&mut self.metrics)
    }

    /// Per-link traversal counts in link-id order (CSR: links of node `v`
    /// are ports `0..out_degree(v)` in sequence). Available any time,
    /// independent of [`SimConfig::record_link_loads`].
    pub fn link_loads(&self) -> Vec<u32> {
        self.queues.iter().map(|q| q.pops()).collect()
    }

    /// Packets still queued (useful after an incomplete run).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Packets delivered since the last reset — live mid-run, so
    /// external step drivers (the serve loop) can sample per-step
    /// delivery counts from the delta between boundaries.
    pub fn delivered(&self) -> usize {
        self.metrics.delivered
    }

    /// Packets the last transmit phase moved (the arrival buffer stays
    /// intact until the next transmit, so external step drivers can
    /// sample it after [`Engine::process_arrivals`]).
    pub fn arrivals_len(&self) -> usize {
        self.arrivals.len()
    }

    /// Drain every queue, returning the stranded packets (used by the
    /// retry wrapper of Lemma 2.1 to send unsuccessful packets back).
    pub fn drain_all(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            let idx = self.active[i] as usize;
            self.queues[idx].drain_into(&mut self.pool, &mut out);
            self.in_active[idx] = false;
            i += 1;
        }
        self.active.clear();
        self.in_flight = 0;
        self.sorted_len = 0;
        out
    }

    /// [`Engine::drain_all`] keeping each packet's link id, so external
    /// coordinators can merge stranded packets across shard engines in
    /// global link order. Links appear in ascending id, packets of one
    /// link in arrival order.
    pub fn drain_all_tagged(&mut self) -> Vec<(u32, Packet)> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            let id = self.active[i];
            let idx = id as usize;
            scratch.clear();
            self.queues[idx].drain_into(&mut self.pool, &mut scratch);
            out.extend(scratch.iter().map(|&p| (id, p)));
            self.in_active[idx] = false;
            i += 1;
        }
        self.active.clear();
        self.in_flight = 0;
        self.sorted_len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use lnpram_topology::graph::ExplicitNetwork;
    use lnpram_topology::Mesh;

    /// Greedy mesh router: first fix column (E/W), then row (N/S).
    struct GreedyMesh {
        mesh: Mesh,
    }

    impl Protocol for GreedyMesh {
        fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
            if node == pkt.dest as usize {
                out.deliver(pkt);
                return;
            }
            let (r, c) = self.mesh.coords(node);
            let (dr, dc) = self.mesh.coords(pkt.dest as usize);
            use lnpram_topology::mesh::Dir;
            let dir = if c < dc {
                Dir::East
            } else if c > dc {
                Dir::West
            } else if r < dr {
                Dir::South
            } else {
                Dir::North
            };
            let port = self.mesh.port_of_dir(node, dir).expect("valid dir");
            out.send(port, pkt);
        }
    }

    #[test]
    fn single_packet_takes_exactly_distance_steps() {
        let mesh = Mesh::square(8);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        let src = mesh.node_at(0, 0);
        let dest = mesh.node_at(5, 7);
        eng.inject(src, Packet::new(0, src as u32, dest as u32));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 1);
        assert_eq!(out.metrics.routing_time as usize, mesh.manhattan(src, dest));
        assert_eq!(out.metrics.max_queue, 1);
    }

    #[test]
    fn self_delivery_at_step_zero() {
        let mesh = Mesh::square(2);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        eng.inject(0, Packet::new(0, 0, 0));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 1);
        assert_eq!(out.metrics.routing_time, 0);
        assert_eq!(out.metrics.steps, 0);
    }

    #[test]
    fn contention_serialises_on_shared_link() {
        // Path graph 0-1-2: both packets from 0 and an injected one at 0
        // headed to 2 must share link (1->2): second is delayed by 1.
        let net = ExplicitNetwork::undirected(3, &[(0, 1), (1, 2)], "path3");
        let mut proto = |node: usize, pkt: Packet, _s: u32, out: &mut Outbox| {
            if node == pkt.dest as usize {
                out.deliver(pkt);
            } else {
                // toward higher node id: port that leads to node+1
                let port = (0..net.out_degree(node))
                    .find(|&p| net.neighbor(node, p) == node + 1)
                    .unwrap();
                out.send(port, pkt);
            }
        };
        let mut eng2 = Engine::new(&net, SimConfig::default());
        eng2.inject(0, Packet::new(0, 0, 2));
        eng2.inject(0, Packet::new(1, 0, 2));
        let out = eng2.run(&mut proto);
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 2);
        // first packet: 2 steps; second: 3 steps (1 delay on link 0->1).
        assert_eq!(out.metrics.routing_time, 3);
        assert_eq!(out.metrics.max_queue, 2);
    }

    #[test]
    fn max_steps_aborts_incomplete() {
        let mesh = Mesh::square(4);
        let cfg = SimConfig {
            max_steps: 2,
            ..Default::default()
        };
        let mut eng = Engine::new(&mesh, cfg);
        let src = mesh.node_at(0, 0);
        let dest = mesh.node_at(3, 3);
        eng.inject(src, Packet::new(0, src as u32, dest as u32));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(!out.completed);
        assert_eq!(out.metrics.delivered, 0);
        assert_eq!(eng.in_flight(), 1);
        let stranded = eng.drain_all();
        assert_eq!(stranded.len(), 1);
        assert_eq!(eng.in_flight(), 0);
    }

    #[test]
    fn blocked_link_strands_packets() {
        let mesh = Mesh::linear(3);
        let mut eng = Engine::new(
            &mesh,
            SimConfig {
                max_steps: 10,
                ..Default::default()
            },
        );
        // Block 0 -> 1 (port of East at node 0).
        let port = mesh
            .port_of_dir(0, lnpram_topology::mesh::Dir::East)
            .unwrap();
        eng.block_link(0, port);
        eng.inject(0, Packet::new(0, 0, 2));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(!out.completed);
        assert_eq!(out.metrics.delivered, 0);
    }

    #[test]
    fn fault_plan_delays_then_delivers() {
        use crate::fault::{Fault, FaultEvent, FaultPlan};
        let mesh = Mesh::linear(3);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        let port = mesh
            .port_of_dir(0, lnpram_topology::mesh::Dir::East)
            .unwrap();
        let link = eng.link_id(0, port);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                step: 1,
                fault: Fault::LinkFail { link },
            },
            FaultEvent {
                step: 5,
                fault: Fault::LinkRecover { link },
            },
        ]);
        eng.set_fault_plan(&plan).unwrap();
        eng.inject(0, Packet::new(0, 0, 2));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 1);
        // Link 0->1 is down for transmits 1..=4: first hop lands at step
        // 5, second at step 6 (2 steps unfaulted).
        assert_eq!(out.metrics.routing_time, 6);
    }

    #[test]
    fn fault_plan_node_fail_makes_destination_unreachable() {
        use crate::fault::{Fault, FaultEvent, FaultPlan};
        let mesh = Mesh::linear(3);
        let mut eng = Engine::new(
            &mesh,
            SimConfig {
                max_steps: 20,
                ..Default::default()
            },
        );
        let plan = FaultPlan::new(vec![FaultEvent {
            step: 1,
            fault: Fault::NodeFail { node: 2 },
        }]);
        assert_eq!(plan.dead_nodes(), vec![2]);
        eng.set_fault_plan(&plan).unwrap();
        eng.inject(0, Packet::new(0, 0, 2));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(!out.completed);
        assert_eq!(out.metrics.delivered, 0);
        let stranded = eng.drain_all();
        assert_eq!(stranded.len(), 1);
        assert_eq!(stranded[0].dest, 2);
    }

    #[test]
    fn degraded_link_runs_at_duty_cycle() {
        use crate::fault::{Fault, FaultEvent, FaultPlan};
        let mesh = Mesh::linear(3);
        let run = |period: Option<u32>| {
            let mut eng = Engine::new(&mesh, SimConfig::default());
            if let Some(period) = period {
                let port = mesh
                    .port_of_dir(0, lnpram_topology::mesh::Dir::East)
                    .unwrap();
                let link = eng.link_id(0, port);
                let plan = FaultPlan::new(vec![FaultEvent {
                    step: 1,
                    fault: Fault::LinkDegrade { link, period },
                }]);
                eng.set_fault_plan(&plan).unwrap();
            }
            for i in 0..4u32 {
                eng.inject(0, Packet::new(i, 0, 2));
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            assert!(out.completed);
            assert_eq!(out.metrics.delivered, 4);
            out.metrics.routing_time
        };
        // 4 packets share link 0->1: last arrives at node 1 at step 4,
        // delivers at 5. At period 2 the link fires on steps 2,4,6,8
        // only, so the last delivery slips to step 9.
        assert_eq!(run(None), 5);
        assert_eq!(run(Some(2)), 9);
    }

    #[test]
    fn reset_clears_fault_plan() {
        use crate::fault::{Fault, FaultEvent, FaultPlan};
        let mesh = Mesh::linear(3);
        let mut eng = Engine::new(
            &mesh,
            SimConfig {
                max_steps: 10,
                ..Default::default()
            },
        );
        let port = mesh
            .port_of_dir(0, lnpram_topology::mesh::Dir::East)
            .unwrap();
        let link = eng.link_id(0, port);
        let plan = FaultPlan::new(vec![FaultEvent {
            step: 1,
            fault: Fault::LinkFail { link },
        }]);
        eng.set_fault_plan(&plan).unwrap();
        eng.inject(0, Packet::new(0, 0, 2));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(!out.completed, "permanent link fault strands the packet");

        eng.reset();
        eng.inject(0, Packet::new(0, 0, 2));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.completed, "reset must clear the installed fault plan");
        assert_eq!(out.metrics.routing_time, 2);
    }

    #[test]
    fn parallel_transmit_matches_serial() {
        // Same workload under serial and parallel transmit must produce
        // identical metrics (per-link selection is order-independent).
        let mesh = Mesh::square(8);
        let mut packets = Vec::new();
        for i in 0..mesh.num_nodes() {
            let dest = (i * 37 + 11) % mesh.num_nodes();
            packets.push((i, Packet::new(i as u32, i as u32, dest as u32)));
        }
        let run = |threshold: usize| {
            let cfg = SimConfig {
                parallel_threshold: threshold,
                threads: 2,
                ..Default::default()
            };
            let mut eng = Engine::new(&mesh, cfg);
            for &(n, p) in &packets {
                eng.inject(n, p);
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            (
                out.metrics.routing_time,
                out.metrics.delivered,
                out.metrics.max_queue,
                out.completed,
            )
        };
        assert_eq!(run(usize::MAX), run(1));
    }

    #[test]
    fn link_loads_recorded_and_identical_across_transmit_modes() {
        let mesh = Mesh::square(6);
        let run = |threshold: usize| {
            let cfg = SimConfig {
                parallel_threshold: threshold,
                threads: 2,
                record_link_loads: true,
                ..Default::default()
            };
            let mut eng = Engine::new(&mesh, cfg);
            for i in 0..mesh.num_nodes() {
                let dest = (i * 17 + 5) % mesh.num_nodes();
                eng.inject(i, Packet::new(i as u32, i as u32, dest as u32));
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            assert!(out.completed);
            out.metrics.link_loads
        };
        let serial = run(usize::MAX);
        let parallel = run(1);
        assert!(!serial.is_empty());
        assert_eq!(
            serial, parallel,
            "pop counting must not depend on threading"
        );
        // Total traversals = sum of every packet's path length ≥ sum of
        // Manhattan distances (greedy takes shortest paths exactly).
        let total: u64 = serial.iter().map(|&l| u64::from(l)).sum();
        let dist: u64 = (0..mesh.num_nodes())
            .map(|i| mesh.manhattan(i, (i * 17 + 5) % mesh.num_nodes()) as u64)
            .sum();
        assert_eq!(total, dist);
    }

    #[test]
    fn link_loads_empty_without_flag() {
        let mesh = Mesh::square(3);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        eng.inject(0, Packet::new(0, 0, 8));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.metrics.link_loads.is_empty());
        // The engine-side accessor still works on demand.
        assert_eq!(
            eng.link_loads().iter().map(|&l| u64::from(l)).sum::<u64>(),
            4
        );
    }

    #[test]
    fn fanout_protocol_duplicates() {
        // A protocol may emit several packets for one arrival (reply
        // fan-out). Inject one packet at the centre; protocol broadcasts to
        // all neighbors, which deliver.
        let mesh = Mesh::square(3);
        let centre = mesh.node_at(1, 1) as u32;
        let mut proto = move |node: usize, pkt: Packet, _s: u32, out: &mut Outbox| {
            if node as u32 == centre && pkt.phase == 0 {
                for port in 0..4 {
                    let mut dup = pkt;
                    dup.phase = 1;
                    dup.id = port as u32;
                    out.send(port, dup);
                }
            } else {
                out.deliver(pkt);
            }
        };
        let mut eng = Engine::new(&mesh, SimConfig::default());
        eng.inject(centre as usize, Packet::new(0, centre, centre));
        let out = eng.run(&mut proto);
        assert!(out.completed);
        assert_eq!(out.metrics.delivered, 4);
        assert_eq!(out.metrics.routing_time, 1);
    }

    /// Satellite pin: a reset engine is indistinguishable from a fresh
    /// one — bit-identical metrics and link loads over the same injection
    /// sequence, under both transmit modes, across several rounds.
    #[test]
    fn reset_engine_matches_fresh_engine() {
        let mesh = Mesh::square(6);
        let cfg = |threshold: usize| SimConfig {
            parallel_threshold: threshold,
            threads: 2,
            record_link_loads: true,
            ..Default::default()
        };
        let inject_round = |eng: &mut Engine, round: usize| {
            for i in 0..mesh.num_nodes() {
                let dest = (i * 13 + round * 7 + 3) % mesh.num_nodes();
                eng.inject(i, Packet::new(i as u32, i as u32, dest as u32));
            }
        };
        let fingerprint = |m: &Metrics| {
            (
                m.routing_time,
                m.delivered,
                m.max_queue,
                m.queued_packet_steps,
                m.steps,
                m.link_loads.clone(),
            )
        };
        for threshold in [usize::MAX, 1] {
            let mut reused = Engine::new(&mesh, cfg(threshold));
            for round in 0..4 {
                reused.reset();
                inject_round(&mut reused, round);
                let out_reused = reused.run(&mut GreedyMesh { mesh });

                let mut fresh = Engine::new(&mesh, cfg(threshold));
                inject_round(&mut fresh, round);
                let out_fresh = fresh.run(&mut GreedyMesh { mesh });

                assert!(out_reused.completed && out_fresh.completed);
                assert_eq!(
                    fingerprint(&out_reused.metrics),
                    fingerprint(&out_fresh.metrics),
                    "round {round}, threshold {threshold}"
                );
                assert_eq!(reused.link_loads(), fresh.link_loads());
            }
        }
    }

    #[test]
    fn reset_clears_stranded_state_and_blocks() {
        let mesh = Mesh::linear(4);
        let mut eng = Engine::new(
            &mesh,
            SimConfig {
                max_steps: 2,
                ..Default::default()
            },
        );
        let port = mesh
            .port_of_dir(0, lnpram_topology::mesh::Dir::East)
            .unwrap();
        eng.block_link(0, port);
        eng.inject(0, Packet::new(0, 0, 3));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(!out.completed);
        assert_eq!(eng.in_flight(), 1);

        eng.reset();
        eng.set_max_steps(100);
        assert_eq!(eng.in_flight(), 0);
        eng.inject(0, Packet::new(0, 0, 3));
        let out = eng.run(&mut GreedyMesh { mesh });
        assert!(out.completed, "reset must unblock links and drain queues");
        assert_eq!(out.metrics.delivered, 1);
        assert_eq!(out.metrics.max_queue, 1, "high-water marks must reset");
    }

    #[test]
    fn arena_stops_growing_after_warmup_across_rounds() {
        let mesh = Mesh::square(5);
        let mut eng = Engine::new(&mesh, SimConfig::default());
        let run_round = |eng: &mut Engine| {
            eng.reset();
            for i in 0..mesh.num_nodes() {
                let dest = (i * 11 + 2) % mesh.num_nodes();
                eng.inject(i, Packet::new(i as u32, i as u32, dest as u32));
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            assert!(out.completed);
        };
        run_round(&mut eng);
        let warm = eng.pool.capacity();
        for _ in 0..5 {
            run_round(&mut eng);
            assert_eq!(eng.pool.capacity(), warm, "arena regrew after warm-up");
        }
    }

    /// `check_invariants` must actually detect corruption, not just
    /// bless healthy engines: break each bookkeeping layer by hand and
    /// confirm the violation is reported.
    #[test]
    fn check_invariants_detects_seeded_corruption() {
        let mesh = Mesh::square(3);
        let build = || {
            let mut eng = Engine::new(&mesh, SimConfig::default());
            for i in 0..4 {
                eng.inject(i, Packet::new(i as u32, i as u32, 8));
            }
            let mut proto = GreedyMesh { mesh };
            let mut out = Outbox::default();
            eng.process_pending(&mut proto, 0, &mut out);
            eng.step_finish();
            assert_eq!(eng.check_invariants(), Ok(()));
            eng
        };

        // Packet-conservation drift.
        let mut eng = build();
        eng.in_flight += 1;
        let err = eng
            .check_invariants()
            .expect_err("in_flight drift must be caught");
        assert!(err.what.contains("packet conservation"), "{err}");

        // Queue length counter out of sync with its chain.
        let mut eng = build();
        let link = eng.active[0] as usize;
        eng.queues[link].push(&mut eng.pool, Packet::new(99, 0, 8));
        // (push bumped len and allocated a slot, but in_flight was not
        // told — and we also corrupt the counter directly)
        eng.in_flight += 1;
        eng.queues[link].reset();
        let err = eng
            .check_invariants()
            .expect_err("leaked chain must be caught");
        assert!(
            err.what.contains("slot conservation") || err.what.contains("len counter"),
            "{err}"
        );

        // Active list referencing an empty, unblocked queue.
        let mut eng = build();
        let link = eng.active[0] as usize;
        let n = eng.queues[link].len();
        for _ in 0..n {
            eng.queues[link].pop(&mut eng.pool, Discipline::Fifo);
        }
        eng.in_flight -= n;
        let err = eng
            .check_invariants()
            .expect_err("stale active entry must be caught");
        assert!(err.what.contains("active"), "{err}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Conservation: every injected packet is delivered exactly
            /// once (greedy routing on a mesh terminates for any request
            /// multiset), and the routing time is at least the maximum
            /// requested distance.
            #[test]
            fn prop_packet_conservation(
                rows in 2usize..8,
                cols in 2usize..8,
                seed: u64,
                load in 1usize..4,
                furthest: bool,
            ) {
                let mesh = Mesh::new(rows, cols);
                let n = mesh.num_nodes();
                let mut state = seed;
                let mut eng = Engine::new(&mesh, SimConfig {
                    discipline: if furthest {
                        crate::queue::Discipline::FurthestFirst
                    } else {
                        crate::queue::Discipline::Fifo
                    },
                    ..Default::default()
                });
                let mut injected = 0u32;
                let mut max_dist = 0u32;
                for src in 0..n {
                    for _ in 0..load {
                        let dest = (lnpram_math::rng::splitmix64(&mut state) as usize) % n;
                        eng.inject(src, Packet::new(injected, src as u32, dest as u32));
                        injected += 1;
                        max_dist = max_dist.max(mesh.manhattan(src, dest) as u32);
                    }
                }
                let out = eng.run(&mut GreedyMesh { mesh });
                prop_assert!(out.completed);
                prop_assert_eq!(out.metrics.delivered as u32, injected);
                prop_assert!(out.metrics.routing_time >= max_dist);
                prop_assert_eq!(eng.in_flight(), 0);
                // State-layer complement of the outcome checks above.
                prop_assert_eq!(eng.check_invariants(), Ok(()));
            }

            /// The internal-state invariants (pool/chain consistency,
            /// packet conservation, active-list shape) hold at *every*
            /// step boundary of a coordinator-driven run, not just at
            /// the end — the dynamic complement of `lnpram-lint`.
            #[test]
            fn prop_invariants_hold_at_every_step(
                rows in 2usize..6,
                cols in 2usize..6,
                seed: u64,
                load in 1usize..3,
            ) {
                let mesh = Mesh::new(rows, cols);
                let n = mesh.num_nodes();
                let mut eng = Engine::new(&mesh, SimConfig::default());
                let mut state = seed;
                let mut id = 0u32;
                for src in 0..n {
                    for _ in 0..load {
                        let dest = (lnpram_math::rng::splitmix64(&mut state) as usize) % n;
                        eng.inject(src, Packet::new(id, src as u32, dest as u32));
                        id += 1;
                    }
                }
                let mut proto = GreedyMesh { mesh };
                let mut out = Outbox::default();
                eng.process_pending(&mut proto, 0, &mut out);
                eng.step_finish();
                prop_assert_eq!(eng.check_invariants(), Ok(()));
                let mut step = 0u32;
                while eng.in_flight() > 0 {
                    step += 1;
                    prop_assert!(step <= eng.cfg.max_steps, "driver ran away");
                    eng.step_transmit();
                    eng.process_arrivals(&mut proto, step, &mut out);
                    eng.step_finish();
                    prop_assert_eq!(eng.check_invariants(), Ok(()));
                }
            }

            /// Engine determinism: identical injections give identical
            /// metrics regardless of the parallel-transmit threshold.
            #[test]
            fn prop_parallel_equals_serial(seed: u64, rows in 2usize..7) {
                let mesh = Mesh::square(rows * 2);
                let n = mesh.num_nodes();
                let run = |threshold: usize| {
                    let mut eng = Engine::new(&mesh, SimConfig {
                        parallel_threshold: threshold,
                        threads: 2,
                        ..Default::default()
                    });
                    let mut state = seed;
                    for src in 0..n {
                        let dest = (lnpram_math::rng::splitmix64(&mut state) as usize) % n;
                        eng.inject(src, Packet::new(src as u32, src as u32, dest as u32));
                    }
                    let out = eng.run(&mut GreedyMesh { mesh });
                    (
                        out.metrics.routing_time,
                        out.metrics.delivered,
                        out.metrics.max_queue,
                        out.metrics.queued_packet_steps,
                    )
                };
                prop_assert_eq!(run(usize::MAX), run(1));
            }

            /// Reusing one engine across rounds is observably identical to
            /// building a fresh engine per round, for any workload.
            #[test]
            fn prop_reset_equals_fresh(seed: u64, rows in 2usize..6, rounds in 1usize..4) {
                let mesh = Mesh::square(rows + 1);
                let n = mesh.num_nodes();
                let mut reused = Engine::new(&mesh, SimConfig::default());
                for round in 0..rounds {
                    let mut fresh = Engine::new(&mesh, SimConfig::default());
                    reused.reset();
                    let mut state = seed ^ round as u64;
                    for src in 0..n {
                        let dest = (lnpram_math::rng::splitmix64(&mut state) as usize) % n;
                        let pkt = Packet::new(src as u32, src as u32, dest as u32);
                        reused.inject(src, pkt);
                        fresh.inject(src, pkt);
                    }
                    let a = reused.run(&mut GreedyMesh { mesh });
                    let b = fresh.run(&mut GreedyMesh { mesh });
                    prop_assert_eq!(a.metrics.routing_time, b.metrics.routing_time);
                    prop_assert_eq!(a.metrics.delivered, b.metrics.delivered);
                    prop_assert_eq!(a.metrics.max_queue, b.metrics.max_queue);
                    prop_assert_eq!(a.metrics.queued_packet_steps, b.metrics.queued_packet_steps);
                    prop_assert_eq!(reused.link_loads(), fresh.link_loads());
                    prop_assert_eq!(reused.check_invariants(), Ok(()));
                }
            }
        }
    }

    #[test]
    fn queue_occupancy_accounting() {
        let net = ExplicitNetwork::undirected(2, &[(0, 1)], "edge");
        let mut eng = Engine::new(&net, SimConfig::default());
        for i in 0..3 {
            eng.inject(0, Packet::new(i, 0, 1));
        }
        let mut proto = |node: usize, pkt: Packet, _s: u32, out: &mut Outbox| {
            if node == 1 {
                out.deliver(pkt);
            } else {
                out.send(0, pkt);
            }
        };
        let out = eng.run(&mut proto);
        // 3 packets over one link: delivered at steps 1,2,3.
        assert_eq!(out.metrics.routing_time, 3);
        // queue holds 2 after step 1, 1 after step 2, 0 after step 3.
        assert_eq!(out.metrics.queued_packet_steps, 3);
        assert!((out.metrics.mean_queue_occupancy() - 1.0).abs() < 1e-12);
    }
}
