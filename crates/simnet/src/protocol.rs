//! The per-node protocol: what a node does with an arriving packet.
//!
//! A [`Protocol`] is the node-local program of the routing or emulation
//! algorithm. The engine calls [`Protocol::on_packet`] for every packet
//! arriving at (or injected into) a node; the protocol responds through the
//! [`Outbox`] by forwarding on out-ports, delivering locally, or absorbing
//! (CRCW combining) — and may emit *several* packets (reply fan-out), which
//! is how the paper's unit-time combining (footnote 3) is expressed.

use crate::packet::Packet;

/// Sink for a node's responses to one arrival.
#[derive(Debug, Default)]
pub struct Outbox {
    pub(crate) sends: Vec<(usize, Packet)>,
    pub(crate) delivered: Vec<Packet>,
}

impl Outbox {
    /// Forward `pkt` on `port` of the current node (enqueued this step,
    /// eligible to traverse the link from the next step on).
    pub fn send(&mut self, port: usize, pkt: Packet) {
        self.sends.push((port, pkt));
    }

    /// The packet has reached its destination; record it as delivered at
    /// the current step.
    pub fn deliver(&mut self, pkt: Packet) {
        self.delivered.push(pkt);
    }

    /// Number of sends queued so far this callback (lets protocols detect
    /// whether a fan-out emitted anything).
    pub fn pending_sends(&self) -> usize {
        self.sends.len()
    }

    /// Absorb the packet silently (combining: the packet's request has been
    /// merged into an already-forwarded one). Equivalent to doing nothing,
    /// spelled out for readability at call sites.
    pub fn absorb(&mut self, _pkt: Packet) {}

    /// The forwards queued by the current callback, as `(port, packet)` —
    /// read by external engine drivers (the `lnpram-shard` coordinator)
    /// that apply an outbox themselves instead of through `Engine::run`.
    pub fn sends(&self) -> &[(usize, Packet)] {
        &self.sends
    }

    /// The packets delivered by the current callback.
    pub fn delivered(&self) -> &[Packet] {
        &self.delivered
    }

    /// Reset both buffers, keeping their capacity. External engine
    /// drivers call this after applying a callback's effects (mirrors
    /// what `Engine::run` does internally).
    pub fn clear(&mut self) {
        self.sends.clear();
        self.delivered.clear();
    }
}

/// A node-local routing/emulation program.
///
/// Determinism contract: `on_packet` must depend only on its arguments and
/// on protocol-internal state mutated in engine call order. All randomness
/// must be pre-assigned to packets (e.g. the `via` field) or drawn from a
/// seeded RNG inside the protocol, so that runs are reproducible.
pub trait Protocol {
    /// Handle `pkt` arriving at `node` at the end of `step` (injections are
    /// processed with `step = 0` before the first transmission).
    fn on_packet(&mut self, node: usize, pkt: Packet, step: u32, out: &mut Outbox);

    /// Handle *all* of a step's arrivals at `node` together. This is the
    /// hook for footnote 3's unit-time combining: packets that are at one
    /// node in one step may be merged before anything is forwarded. The
    /// default just feeds each packet to [`Protocol::on_packet`] in
    /// arrival order (sorted by incoming link id, so deterministic).
    fn on_arrivals(&mut self, node: usize, pkts: &[Packet], step: u32, out: &mut Outbox) {
        for &pkt in pkts {
            self.on_packet(node, pkt, step, out);
        }
    }

    /// Called after all arrivals of a step have been processed. Protocols
    /// that batch per-step work (e.g. memory-module service) hook here.
    fn on_step_end(&mut self, _step: u32) {}
}

impl<F> Protocol for F
where
    F: FnMut(usize, Packet, u32, &mut Outbox),
{
    fn on_packet(&mut self, node: usize, pkt: Packet, step: u32, out: &mut Outbox) {
        self(node, pkt, step, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_sends_and_deliveries() {
        let mut out = Outbox::default();
        let p = Packet::new(1, 0, 5);
        out.send(2, p);
        out.deliver(p);
        out.absorb(p);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].0, 2);
        assert_eq!(out.delivered.len(), 1);
        out.clear();
        assert!(out.sends.is_empty() && out.delivered.is_empty());
    }

    #[test]
    fn closures_are_protocols() {
        let mut seen = 0usize;
        {
            let mut proto = |_node: usize, pkt: Packet, _step: u32, out: &mut Outbox| {
                seen += 1;
                out.deliver(pkt);
            };
            let mut out = Outbox::default();
            proto.on_packet(3, Packet::new(0, 0, 3), 1, &mut out);
            assert_eq!(out.delivered.len(), 1);
        }
        assert_eq!(seen, 1);
    }
}
