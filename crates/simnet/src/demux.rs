//! Per-tag delivery demultiplexing: split one run's delivery metrics by
//! [`Packet::tag`](crate::Packet).
//!
//! Multi-tenant batched routing injects several tenants' packets into a
//! single engine run, with each packet's `tag` carrying its tenant slot.
//! [`TagDemux`] wraps any [`Protocol`] and observes the deliveries the
//! inner protocol emits, accumulating one [`TagMetrics`] per tag —
//! delivered count, routing time and the latency histogram, recorded
//! exactly the way the engine's global [`Metrics`](crate::Metrics) are
//! (`on_delivery(step, injected_at)` per delivery). Because both the
//! serial [`Engine`](crate::Engine) and the sharded coordinator drive
//! the protocol through the same callbacks in the same order, the demux
//! is transparent: wrapping changes no outcome, it only *attributes*
//! deliveries.

use crate::metrics::Metrics;
use crate::packet::Packet;
use crate::protocol::{Outbox, Protocol};
use lnpram_math::stats::Histogram;

/// Delivery metrics of one tag (tenant) within a shared run: the subset
/// of [`Metrics`](crate::Metrics) attributable to individual packets.
/// Queue residency is engine-global (queues are shared state) and stays
/// on the run's aggregate metrics.
#[derive(Debug, Clone)]
pub struct TagMetrics {
    /// Packets of this tag delivered.
    pub delivered: usize,
    /// Step at which this tag's last delivery happened.
    pub routing_time: u32,
    /// Per-packet latency histogram of this tag's deliveries.
    pub latency: Histogram,
}

impl Default for TagMetrics {
    fn default() -> Self {
        TagMetrics {
            delivered: 0,
            routing_time: 0,
            latency: Histogram::new(1),
        }
    }
}

impl TagMetrics {
    /// Record one delivery (mirrors [`Metrics::on_delivery`], including
    /// the debug-build panic on a delivery that precedes its injection
    /// step — a misordered-admission bookkeeping error, not a latency of
    /// zero).
    pub fn on_delivery(&mut self, step: u32, injected_at: u32) {
        self.delivered += 1;
        self.routing_time = self.routing_time.max(step);
        let latency = step.checked_sub(injected_at);
        debug_assert!(
            latency.is_some(),
            "delivery at step {step} precedes injection at step {injected_at}"
        );
        self.latency.record(u64::from(latency.unwrap_or(0)));
    }

    /// Does this tag's slice of the run match `m` delivery-for-delivery?
    /// (The equality the batched-vs-isolated contract pins: delivered
    /// count, routing time, and the full latency distribution.)
    pub fn matches(&self, m: &Metrics) -> bool {
        self.delivered == m.delivered
            && self.routing_time == m.routing_time
            && self.latency.buckets().eq(m.latency.buckets())
    }
}

/// A [`Protocol`] wrapper accumulating per-tag delivery metrics.
///
/// Every delivered packet's `tag` must be `< tags` — the demux indexes a
/// dense table by tag and panics on out-of-range tags (a tagging bug,
/// not a routing outcome).
pub struct TagDemux<P> {
    inner: P,
    per_tag: Vec<TagMetrics>,
}

impl<P: Protocol> TagDemux<P> {
    /// Wrap `inner`, tracking tags `0..tags`.
    pub fn new(inner: P, tags: usize) -> Self {
        TagDemux {
            inner,
            per_tag: (0..tags).map(|_| TagMetrics::default()).collect(),
        }
    }

    /// The accumulated per-tag metrics, consuming the wrapper.
    pub fn into_metrics(self) -> Vec<TagMetrics> {
        self.per_tag
    }

    fn record(&mut self, out: &Outbox, from: usize, step: u32) {
        for pkt in &out.delivered()[from..] {
            self.per_tag[pkt.tag as usize].on_delivery(step, pkt.injected_at);
        }
    }
}

impl<P: Protocol> Protocol for TagDemux<P> {
    fn on_packet(&mut self, node: usize, pkt: Packet, step: u32, out: &mut Outbox) {
        let before = out.delivered().len();
        self.inner.on_packet(node, pkt, step, out);
        self.record(out, before, step);
    }

    fn on_arrivals(&mut self, node: usize, pkts: &[Packet], step: u32, out: &mut Outbox) {
        let before = out.delivered().len();
        self.inner.on_arrivals(node, pkts, step, out);
        self.record(out, before, step);
    }

    fn on_step_end(&mut self, step: u32) {
        self.inner.on_step_end(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};
    use lnpram_topology::graph::ExplicitNetwork;
    use lnpram_topology::Network;

    /// Forward toward node n-1 on a path; deliver at the destination.
    fn forward(net: &ExplicitNetwork) -> impl Protocol + '_ {
        move |node: usize, pkt: Packet, _s: u32, out: &mut Outbox| {
            if node == pkt.dest as usize {
                out.deliver(pkt);
            } else {
                let port = (0..net.out_degree(node))
                    .find(|&p| net.neighbor(node, p) == node + 1)
                    .expect("forward port");
                out.send(port, pkt);
            }
        }
    }

    #[test]
    fn demux_splits_deliveries_by_tag_and_sums_to_global() {
        let net = ExplicitNetwork::undirected(4, &[(0, 1), (1, 2), (2, 3)], "path4");
        let mut eng = Engine::new(&net, SimConfig::default());
        // Tag 0: two packets 0→3 (one delayed by contention);
        // tag 1: one packet 1→2.
        eng.inject(0, Packet::new(0, 0, 3).with_tag(0));
        eng.inject(0, Packet::new(1, 0, 3).with_tag(0));
        eng.inject(1, Packet::new(2, 1, 2).with_tag(1));
        let mut demux = TagDemux::new(forward(&net), 2);
        let out = eng.run(&mut demux);
        assert!(out.completed);
        let tags = demux.into_metrics();
        assert_eq!(tags[0].delivered, 2);
        assert_eq!(tags[1].delivered, 1);
        assert_eq!(tags[1].routing_time, 1);
        assert_eq!(tags[0].routing_time, out.metrics.routing_time);
        assert_eq!(
            tags[0].delivered + tags[1].delivered,
            out.metrics.delivered,
            "tag metrics partition the global deliveries"
        );
        let merged: u64 = tags.iter().map(|t| t.latency.total()).sum();
        assert_eq!(merged, out.metrics.latency.total());
    }

    /// Mirror of the `Metrics` misordered-injection guard: per-tag
    /// accounting panics (debug builds) on a delivery that precedes its
    /// injection step.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "precedes injection")]
    fn misordered_injection_is_caught_per_tag() {
        let mut t = TagMetrics::default();
        t.on_delivery(1, 4);
    }

    #[test]
    fn wrapping_changes_no_outcome() {
        let net = ExplicitNetwork::undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], "path5");
        let run = |wrap: bool| {
            let mut eng = Engine::new(&net, SimConfig::default());
            for i in 0..4u32 {
                eng.inject(i as usize, Packet::new(i, i, 4).with_tag(u64::from(i % 2)));
            }
            if wrap {
                let mut p = TagDemux::new(forward(&net), 2);
                eng.run(&mut p)
            } else {
                let mut p = forward(&net);
                eng.run(&mut p)
            }
        };
        let plain = run(false);
        let tapped = run(true);
        assert_eq!(plain.metrics.routing_time, tapped.metrics.routing_time);
        assert_eq!(plain.metrics.delivered, tapped.metrics.delivered);
        assert_eq!(
            plain.metrics.queued_packet_steps,
            tapped.metrics.queued_packet_steps
        );
    }
}
