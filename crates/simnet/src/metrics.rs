//! Run metrics: routing time, queue sizes, delivery latencies.
//!
//! These are precisely the three quantities the paper uses to assess a
//! routing scheme (§2.2.1): *routing time* (step at which the last packet
//! arrives), *queue size* (maximum packets resident at any link queue at
//! any time), and the latency distribution (for delay-vs-bound tables).

use lnpram_math::stats::{Histogram, Summary};

/// Metrics accumulated by one [`Engine`](crate::engine::Engine) run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Packets delivered.
    pub delivered: usize,
    /// Step at which the last delivery happened (the routing time).
    pub routing_time: u32,
    /// Maximum length any link queue reached.
    pub max_queue: usize,
    /// Total packet-steps spent queued (for average-occupancy reporting).
    pub queued_packet_steps: u64,
    /// Steps actually executed.
    pub steps: u32,
    /// Histogram of per-packet latency (delivery step − injection step).
    pub latency: Histogram,
    /// Per-link traversal counts in link-id order, populated only when
    /// [`SimConfig::record_link_loads`](crate::engine::SimConfig) is set
    /// (used by the congestion-balance tables).
    pub link_loads: Vec<u32>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            delivered: 0,
            routing_time: 0,
            max_queue: 0,
            queued_packet_steps: 0,
            steps: 0,
            latency: Histogram::new(1),
            link_loads: Vec::new(),
        }
    }
}

impl Metrics {
    /// Record a delivery at `step` for a packet injected at `injected_at`.
    /// Public so external engine drivers (the `lnpram-shard` coordinator)
    /// accumulate deliveries exactly the way `Engine::run` does.
    ///
    /// A delivery before its injection step is a bookkeeping error (e.g. a
    /// serve driver admitting packets with a stale step counter); debug
    /// builds panic on it rather than silently clamping the latency to 0.
    pub fn on_delivery(&mut self, step: u32, injected_at: u32) {
        self.delivered += 1;
        self.routing_time = self.routing_time.max(step);
        let latency = step.checked_sub(injected_at);
        debug_assert!(
            latency.is_some(),
            "delivery at step {step} precedes injection at step {injected_at}"
        );
        self.latency.record(u64::from(latency.unwrap_or(0)));
    }

    /// Mean queue occupancy per executed step (packet-steps / steps).
    pub fn mean_queue_occupancy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.queued_packet_steps as f64 / f64::from(self.steps)
        }
    }

    /// Load-imbalance factor over the used links: max load / mean load of
    /// links that carried at least one packet. 1.0 = perfectly balanced.
    /// Requires [`link_loads`](Self::link_loads) to have been recorded.
    pub fn link_imbalance(&self) -> f64 {
        let used: Vec<u32> = self.link_loads.iter().copied().filter(|&l| l > 0).collect();
        if used.is_empty() {
            return 1.0;
        }
        let max = *used.iter().max().expect("non-empty") as f64;
        let mean = used.iter().map(|&l| l as f64).sum::<f64>() / used.len() as f64;
        max / mean
    }

    /// Latency digest, computed in O(buckets) straight from the latency
    /// histogram (no per-packet materialization — the old implementation
    /// allocated one `f64` per delivered packet, O(total) at bench
    /// scale). Returns the documented all-zero [`Summary::empty`] when
    /// nothing was delivered instead of panicking.
    pub fn latency_summary(&self) -> Summary {
        Summary::from_histogram(&self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_updates_routing_time_and_latency() {
        let mut m = Metrics::default();
        m.on_delivery(10, 0);
        m.on_delivery(7, 2);
        assert_eq!(m.delivered, 2);
        assert_eq!(m.routing_time, 10);
        assert_eq!(m.latency.total(), 2);
        assert_eq!(m.latency.max(), 10);
    }

    /// A delivery recorded before its injection step is a bookkeeping
    /// error (stale step counter in a driver) and must be caught loudly
    /// in debug builds instead of clamping the latency to 0.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "precedes injection")]
    fn misordered_injection_is_caught() {
        let mut m = Metrics::default();
        m.on_delivery(3, 7);
    }

    #[test]
    fn occupancy_division() {
        let m = Metrics {
            steps: 4,
            queued_packet_steps: 10,
            ..Metrics::default()
        };
        assert!((m.mean_queue_occupancy() - 2.5).abs() < 1e-12);
        let empty = Metrics::default();
        assert_eq!(empty.mean_queue_occupancy(), 0.0);
    }

    #[test]
    fn link_imbalance_math() {
        let mut m = Metrics::default();
        assert_eq!(m.link_imbalance(), 1.0); // nothing recorded
        m.link_loads = vec![0, 4, 2, 0, 6]; // used: 4, 2, 6 → mean 4, max 6
        assert!((m.link_imbalance() - 1.5).abs() < 1e-12);
        m.link_loads = vec![3, 3, 3];
        assert!((m.link_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_values() {
        let mut m = Metrics::default();
        for (s, i) in [(5u32, 0u32), (6, 0), (7, 0)] {
            m.on_delivery(s, i);
        }
        let sum = m.latency_summary();
        assert_eq!(sum.count, 3);
        assert_eq!(sum.min, 5.0);
        assert_eq!(sum.max, 7.0);
    }

    /// No deliveries must yield the documented zero-count digest, not a
    /// panic (serve runs with a zero-packet trace hit this path).
    #[test]
    fn latency_summary_empty_is_zero_count() {
        let m = Metrics::default();
        let sum = m.latency_summary();
        assert_eq!(sum.count, 0);
        assert_eq!(sum, Summary::empty());
    }
}
