//! Deterministic fault schedules: scripted link/node failures applied
//! at step boundaries.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultEvent`]s — link fail,
//! link degrade, link recover, node fail, node recover — keyed by the
//! **global step** at which they take effect. Installing a plan on an
//! engine ([`crate::Engine::set_fault_plan`]) makes the engine apply
//! each event at the start of the transmit phase of its step: an event
//! at step `s` gates the transmit of step `s` and every later step
//! until a recovery event clears it.
//!
//! Because the plan is applied at phase boundaries (never mid-phase),
//! serial and sharded stepping observe the **identical** link state at
//! every step, so the sharded bit-identity contract extends to faulted
//! runs: for any plan, `ShardedEngine` == `Engine` at every shard
//! count.
//!
//! Semantics:
//!
//! - **Link fail**: packets still queue on the link but never traverse
//!   it (same as [`crate::Engine::block_link`]).
//! - **Link degrade** with period `p`: the link transmits only on steps
//!   that are multiples of `p` (period 1 is a no-op, period 0 is a
//!   plan error). Effective bandwidth drops to `1/p`.
//! - **Node fail**: every link incident to the node — inbound and
//!   outbound — goes down. Packets already queued at the node stay
//!   stranded; packets destined for it can never be delivered while it
//!   is down. Protocol callbacks still run if packets somehow arrive
//!   (they cannot while the node is down), keeping the step loop
//!   oblivious to faults.
//! - **Recover**: clears the matching fault. `LinkRecover` clears both
//!   a fail and a degrade on that link; `NodeRecover` re-evaluates
//!   every incident link (a link stays down if it is *also* failed or
//!   degraded on its own, or if the node at its other end is down).
//!
//! Fault steps are relative to the engine's last [`crate::Engine::reset`]:
//! retry-style drivers that replay a plan on every attempt observe the
//! same adversity each time (the Lemma 2.1 model — fresh randomness,
//! same network behaviour).

use std::error::Error;
use std::fmt;

/// One fault or repair action (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The link goes down: packets queue on it but never traverse.
    LinkFail {
        /// Global link id (see [`crate::Engine::link_id`]).
        link: usize,
    },
    /// The link transmits only on steps that are multiples of `period`.
    LinkDegrade {
        /// Global link id.
        link: usize,
        /// Transmit period; must be ≥ 1 (1 = no degradation).
        period: u32,
    },
    /// The link is repaired: clears both a fail and a degrade.
    LinkRecover {
        /// Global link id.
        link: usize,
    },
    /// Every link incident to the node (inbound and outbound) goes down.
    NodeFail {
        /// Global node id.
        node: usize,
    },
    /// The node is repaired: incident links come back up unless they are
    /// independently failed/degraded or their other endpoint is down.
    NodeRecover {
        /// Global node id.
        node: usize,
    },
}

/// A [`Fault`] taking effect at a global step (it gates the transmit
/// phase of that step and onwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// First step whose transmit phase observes the fault.
    pub step: u32,
    /// The action.
    pub fault: Fault,
}

/// A deterministic failure script: [`FaultEvent`]s sorted by step.
///
/// Construction sorts the events (stably, so same-step events apply in
/// the order given). The plan is pure data — it validates against a
/// concrete engine only when installed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Build a plan from `events` (sorted by step; the given order is
    /// kept among same-step events).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.step);
        FaultPlan { events }
    }

    /// The events, ascending by step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Nodes that are down at the **end** of the plan (failed and never
    /// recovered afterwards), ascending. Packets whose destination node
    /// is in this set can never be delivered once the failure hits —
    /// recovery drivers classify them as lost instead of retrying.
    pub fn dead_nodes(&self) -> Vec<usize> {
        let mut down = Vec::new();
        for ev in &self.events {
            match ev.fault {
                Fault::NodeFail { node } if !down.contains(&node) => {
                    down.push(node);
                }
                Fault::NodeRecover { node } => down.retain(|&v| v != node),
                _ => {}
            }
        }
        down.sort_unstable();
        down
    }
}

/// Why a [`FaultPlan`] could not be installed or honored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// An event names a link id outside the engine's `0..links` range.
    LinkOutOfRange {
        /// The offending link id.
        link: usize,
        /// Number of links in the engine.
        links: usize,
    },
    /// An event names a node id outside the engine's `0..nodes` range.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the engine.
        nodes: usize,
    },
    /// A [`Fault::LinkDegrade`] has period 0 (a link that never
    /// transmits is [`Fault::LinkFail`], not a degrade).
    ZeroDegradePeriod {
        /// The offending link id.
        link: usize,
    },
    /// The target (backend, router, …) cannot honor fault plans.
    Unsupported {
        /// Human-readable name of the target that refused.
        what: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::LinkOutOfRange { link, links } => {
                write!(
                    f,
                    "fault names link {link} but the engine has {links} links"
                )
            }
            FaultError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault names node {node} but the engine has {nodes} nodes"
                )
            }
            FaultError::ZeroDegradePeriod { link } => {
                write!(
                    f,
                    "degrade period 0 on link {link} (use LinkFail for a dead link)"
                )
            }
            FaultError::Unsupported { what } => {
                write!(f, "{what} does not support fault plans")
            }
        }
    }
}

impl Error for FaultError {}

/// The runtime form of a plan, bound to one engine's CSR: tracks which
/// faults are active and converts them into per-link blocked flags.
///
/// Engines own one of these when a plan is installed and call
/// [`FaultSchedule::advance`] at the start of every transmit phase.
/// The schedule itself is engine-agnostic — the sharded coordinator
/// builds one over the *global* CSR and forwards the per-link blocked
/// updates to whichever shard owns each link, which is exactly how the
/// serial/sharded bit-identity is preserved.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    cursor: usize,
    /// Explicitly failed links (independent of node state).
    link_down: Vec<bool>,
    /// Degrade period per link; 0 = not degraded.
    degrade: Vec<u32>,
    /// Links with an active degrade period — their effective blocked
    /// state flips with the step parity, so they are re-applied every
    /// step.
    degraded: Vec<u32>,
    node_down: Vec<bool>,
    /// Tail node (source) of each link.
    link_src: Vec<u32>,
    /// Head node (target) of each link.
    link_dst: Vec<u32>,
    /// Out-link CSR (links leaving node `v` are
    /// `out_offset[v] .. out_offset[v+1]`, the engine's own link ids).
    out_offset: Vec<u32>,
    /// In-link CSR: links arriving at node `v` are
    /// `in_links[in_offset[v] .. in_offset[v+1]]`.
    in_offset: Vec<u32>,
    in_links: Vec<u32>,
    /// Scratch: links touched by this step's events.
    touched: Vec<u32>,
}

impl FaultSchedule {
    /// Bind `plan` to a CSR (`link_offset` per node, `link_target` per
    /// link — the same shape [`crate::Engine`] stores), validating every
    /// event against it.
    pub fn build(
        plan: &FaultPlan,
        link_offset: &[u32],
        link_target: &[u32],
    ) -> Result<Self, FaultError> {
        let nodes = link_offset.len() - 1;
        let links = link_target.len();
        for ev in plan.events() {
            match ev.fault {
                Fault::LinkFail { link } | Fault::LinkRecover { link } => {
                    if link >= links {
                        return Err(FaultError::LinkOutOfRange { link, links });
                    }
                }
                Fault::LinkDegrade { link, period } => {
                    if link >= links {
                        return Err(FaultError::LinkOutOfRange { link, links });
                    }
                    if period == 0 {
                        return Err(FaultError::ZeroDegradePeriod { link });
                    }
                }
                Fault::NodeFail { node } | Fault::NodeRecover { node } => {
                    if node >= nodes {
                        return Err(FaultError::NodeOutOfRange { node, nodes });
                    }
                }
            }
        }
        // Tail node per link, from the out-CSR.
        let mut link_src = vec![0u32; links];
        for v in 0..nodes {
            for l in link_offset[v]..link_offset[v + 1] {
                link_src[l as usize] = v as u32;
            }
        }
        // In-link CSR by counting sort on the targets.
        let mut in_offset = vec![0u32; nodes + 1];
        for &t in link_target {
            in_offset[t as usize + 1] += 1;
        }
        for v in 0..nodes {
            in_offset[v + 1] += in_offset[v];
        }
        let mut next = in_offset.clone();
        let mut in_links = vec![0u32; links];
        for (l, &t) in link_target.iter().enumerate() {
            let slot = next[t as usize];
            in_links[slot as usize] = l as u32;
            next[t as usize] = slot + 1;
        }
        Ok(FaultSchedule {
            events: plan.events().to_vec(),
            cursor: 0,
            link_down: vec![false; links],
            degrade: vec![0; links],
            degraded: Vec::new(),
            node_down: vec![false; nodes],
            link_src,
            link_dst: link_target.to_vec(),
            out_offset: link_offset.to_vec(),
            in_offset,
            in_links,
            touched: Vec::new(),
        })
    }

    /// Effective blocked state of `link` at `step`: down, degraded off
    /// its duty cycle, or either endpoint node down.
    fn effective(&self, link: usize, step: u32) -> bool {
        let p = self.degrade[link];
        self.link_down[link]
            || self.node_down[self.link_src[link] as usize]
            || self.node_down[self.link_dst[link] as usize]
            || (p >= 2 && !step.is_multiple_of(p))
    }

    /// Apply every event with `event.step <= step`, then report the new
    /// blocked state of each affected link through `apply(link,
    /// blocked)`. Degraded links are re-reported every step (their duty
    /// cycle depends on the step number). Steps must be advanced in
    /// ascending order; the engines call this once per transmit phase.
    pub fn advance<F: FnMut(usize, bool)>(&mut self, step: u32, mut apply: F) {
        self.touched.clear();
        while self.cursor < self.events.len() && self.events[self.cursor].step <= step {
            let ev = self.events[self.cursor];
            self.cursor += 1;
            match ev.fault {
                Fault::LinkFail { link } => {
                    self.link_down[link] = true;
                    self.touched.push(link as u32);
                }
                Fault::LinkDegrade { link, period } => {
                    if self.degrade[link] == 0 && period >= 2 {
                        self.degraded.push(link as u32);
                    } else if self.degrade[link] >= 2 && period < 2 {
                        self.degraded.retain(|&l| l as usize != link);
                    }
                    self.degrade[link] = period;
                    self.touched.push(link as u32);
                }
                Fault::LinkRecover { link } => {
                    self.link_down[link] = false;
                    if self.degrade[link] != 0 {
                        self.degrade[link] = 0;
                        self.degraded.retain(|&l| l as usize != link);
                    }
                    self.touched.push(link as u32);
                }
                Fault::NodeFail { node } | Fault::NodeRecover { node } => {
                    self.node_down[node] = matches!(ev.fault, Fault::NodeFail { .. });
                    for l in self.in_offset[node]..self.in_offset[node + 1] {
                        self.touched.push(self.in_links[l as usize]);
                    }
                    for l in self.out_offset[node]..self.out_offset[node + 1] {
                        self.touched.push(l);
                    }
                }
            }
        }
        for i in 0..self.touched.len() {
            let l = self.touched[i] as usize;
            apply(l, self.effective(l, step));
        }
        for i in 0..self.degraded.len() {
            let l = self.degraded[i] as usize;
            apply(l, self.effective(l, step));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Vec<u32>, Vec<u32>) {
        // 0 -> 1 -> 2 with a back link 2 -> 1.
        // links: 0: 0->1, 1: 1->2, 2: 2->1
        (vec![0, 1, 2, 3], vec![1, 2, 1])
    }

    fn states(sched: &mut FaultSchedule, links: usize, step: u32) -> Vec<bool> {
        let mut blocked = vec![false; links];
        sched.advance(step, |l, b| blocked[l] = b);
        blocked
    }

    #[test]
    fn plan_sorts_events_and_reports_dead_nodes() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                step: 9,
                fault: Fault::NodeFail { node: 2 },
            },
            FaultEvent {
                step: 1,
                fault: Fault::NodeFail { node: 1 },
            },
            FaultEvent {
                step: 4,
                fault: Fault::NodeRecover { node: 1 },
            },
        ]);
        assert_eq!(plan.events()[0].step, 1);
        assert_eq!(plan.dead_nodes(), vec![2]);
    }

    #[test]
    fn link_fail_then_recover() {
        let (off, tgt) = line3();
        let plan = FaultPlan::new(vec![
            FaultEvent {
                step: 2,
                fault: Fault::LinkFail { link: 1 },
            },
            FaultEvent {
                step: 5,
                fault: Fault::LinkRecover { link: 1 },
            },
        ]);
        let mut s = FaultSchedule::build(&plan, &off, &tgt).unwrap();
        let mut blocked = [false; 3];
        for step in 1..=6 {
            s.advance(step, |l, b| blocked[l] = b);
            assert_eq!(blocked[1], (2..5).contains(&step), "step {step}");
        }
    }

    #[test]
    fn degrade_duty_cycle() {
        let (off, tgt) = line3();
        let plan = FaultPlan::new(vec![FaultEvent {
            step: 1,
            fault: Fault::LinkDegrade { link: 0, period: 3 },
        }]);
        let mut s = FaultSchedule::build(&plan, &off, &tgt).unwrap();
        let mut blocked = [false; 3];
        for step in 1..=7 {
            s.advance(step, |l, b| blocked[l] = b);
            assert_eq!(blocked[0], step % 3 != 0, "step {step}");
        }
    }

    #[test]
    fn node_fail_blocks_incident_links_both_ways() {
        let (off, tgt) = line3();
        let plan = FaultPlan::new(vec![
            FaultEvent {
                step: 1,
                fault: Fault::NodeFail { node: 1 },
            },
            FaultEvent {
                step: 3,
                fault: Fault::NodeRecover { node: 1 },
            },
        ]);
        let mut s = FaultSchedule::build(&plan, &off, &tgt).unwrap();
        // Node 1 touches link 0 (0->1, inbound), 1 (1->2, outbound) and
        // 2 (2->1, inbound).
        assert_eq!(states(&mut s, 3, 1), vec![true, true, true]);
        assert_eq!(states(&mut s, 3, 3), vec![false, false, false]);
    }

    #[test]
    fn validation_rejects_bad_ids_and_zero_period() {
        let (off, tgt) = line3();
        let bad_link = FaultPlan::new(vec![FaultEvent {
            step: 0,
            fault: Fault::LinkFail { link: 3 },
        }]);
        assert_eq!(
            FaultSchedule::build(&bad_link, &off, &tgt).unwrap_err(),
            FaultError::LinkOutOfRange { link: 3, links: 3 }
        );
        let bad_node = FaultPlan::new(vec![FaultEvent {
            step: 0,
            fault: Fault::NodeFail { node: 7 },
        }]);
        assert_eq!(
            FaultSchedule::build(&bad_node, &off, &tgt).unwrap_err(),
            FaultError::NodeOutOfRange { node: 7, nodes: 3 }
        );
        let zero = FaultPlan::new(vec![FaultEvent {
            step: 0,
            fault: Fault::LinkDegrade { link: 0, period: 0 },
        }]);
        assert_eq!(
            FaultSchedule::build(&zero, &off, &tgt).unwrap_err(),
            FaultError::ZeroDegradePeriod { link: 0 }
        );
    }
}
