//! A hand-rolled, literal-aware Rust lexer.
//!
//! The lint rules match on *token* streams, never on raw text, so a
//! `HashMap` inside a string literal, a doc comment, or a nested block
//! comment can never false-positive. The lexer is deliberately lossy —
//! it does not distinguish keyword from identifier, keeps only the
//! punctuation characters the rules need to see, and records literals
//! as opaque tokens — but it is *exact* about where literals and
//! comments begin and end:
//!
//! * line comments (`//`, `///`, `//!`),
//! * nested block comments (`/* /* */ */`),
//! * cooked strings with escapes (`"a \" b"`),
//! * raw strings with any guard depth (`r"…"`, `r##"…"##`),
//! * byte strings and raw byte strings (`b"…"`, `br#"…"#`),
//! * char and byte-char literals (`'a'`, `'\n'`, `b'x'`),
//! * lifetimes vs. char literals (`&'a T` vs `'a'`),
//! * raw identifiers (`r#type`).
//!
//! The offline constraint (no `syn`/`proc-macro2`) is why this exists;
//! the unit suite below pins every tricky case so the rules layer can
//! trust the stream.

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub kind: TokKind,
}

/// What a token is — exactly as much as the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// One punctuation character (`.`, `!`, `[`, `{`, `:`, …).
    Punct(char),
    /// String / char / byte-string literal; `empty` is true for `""`,
    /// `r""`, `b""` (rules use it to reject `.expect("")`).
    Str { empty: bool },
    /// Numeric literal (value irrelevant to every rule).
    Num,
    /// Lifetime (`'a`, `'static`) — kept distinct so `'a'` char
    /// literals cannot be confused with borrows.
    Lifetime,
}

/// A comment, kept separate from the token stream (suppression
/// directives live here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
    /// True if a token precedes the comment on its line (a trailing
    /// comment annotates its own line; a standalone one annotates the
    /// next token line).
    pub trailing: bool,
}

/// The output of [`lex`]: tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Line of the first token strictly after `line` (for standalone
    /// suppression comments, the line they annotate).
    pub fn next_token_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// literals or comments simply end at end-of-file (the lint runs on
/// code that rustc already accepted, so recovery precision does not
/// matter).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut line: u32 = 1;
    let mut last_token_line: u32 = 0;
    let mut i = 0usize;

    // Count newlines in chars[from..to] into `line`.
    let bump_lines = |chars: &[char], from: usize, to: usize, line: &mut u32| {
        *line += chars[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: chars[start..j].iter().collect(),
                    trailing: last_token_line == line,
                });
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment.
                let start_line = line;
                let text_start = i + 2;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    line: start_line,
                    text: chars[text_start..text_end].iter().collect(),
                    trailing: last_token_line == start_line,
                });
                i = j;
            }
            '"' => {
                let (j, empty) = cooked_string_end(&chars, i);
                bump_lines(&chars, i, j, &mut line);
                // Token carries the *start* line; bump after recording.
                let tok_line = line - chars[i..j].iter().filter(|&&c| c == '\n').count() as u32;
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Str { empty },
                });
                last_token_line = line;
                i = j;
            }
            '\'' => {
                let (j, kind) = char_or_lifetime(&chars, i);
                out.tokens.push(Token { line, kind });
                last_token_line = line;
                i = j;
            }
            c if is_ident_start(c) => {
                // Check string-ish prefixes first: r"", r#"", b"", br"",
                // b'', and raw identifiers r#ident.
                if let Some((j, empty)) = string_prefix(&chars, i) {
                    let start_line = line;
                    bump_lines(&chars, i, j, &mut line);
                    out.tokens.push(Token {
                        line: start_line,
                        kind: TokKind::Str { empty },
                    });
                    last_token_line = line;
                    i = j;
                    continue;
                }
                if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                    let (j, _) = char_or_lifetime(&chars, i + 1);
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Str { empty: false },
                    });
                    last_token_line = line;
                    i = j;
                    continue;
                }
                if c == 'r' && chars.get(i + 1) == Some(&'#') {
                    if let Some(&c2) = chars.get(i + 2) {
                        if is_ident_start(c2) {
                            // Raw identifier r#type → ident "type".
                            let mut j = i + 2;
                            while j < chars.len() && is_ident_continue(chars[j]) {
                                j += 1;
                            }
                            out.tokens.push(Token {
                                line,
                                kind: TokKind::Ident(chars[i + 2..j].iter().collect()),
                            });
                            last_token_line = line;
                            i = j;
                            continue;
                        }
                    }
                }
                let mut j = i;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Ident(chars[i..j].iter().collect()),
                });
                last_token_line = line;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < chars.len() {
                    let d = chars[j];
                    if is_ident_continue(d) {
                        j += 1;
                    } else if d == '.'
                        && chars.get(j + 1).is_some_and(|&e| e.is_ascii_digit())
                        && !chars[i..j].contains(&'.')
                    {
                        // `1.5` but not the range `0..n`.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Num,
                });
                last_token_line = line;
                i = j;
            }
            p => {
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(p),
                });
                last_token_line = line;
                i += 1;
            }
        }
    }
    out
}

/// End index (exclusive) of the cooked string starting at `chars[i] == '"'`,
/// plus whether it is empty.
fn cooked_string_end(chars: &[char], i: usize) -> (usize, bool) {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return (j + 1, j == i + 1),
            _ => j += 1,
        }
    }
    (chars.len(), false)
}

/// If `chars[i..]` starts a (raw/byte) string literal — `r"`, `r#"`,
/// `b"`, `br"`, `br#"` … — return its end index and emptiness.
fn string_prefix(chars: &[char], i: usize) -> Option<(usize, bool)> {
    let mut j = i;
    let c = chars[j];
    let mut raw = false;
    if c == 'b' {
        j += 1;
        if chars.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        }
    } else if c == 'r' {
        raw = true;
        j += 1;
    } else {
        return None;
    }
    if raw {
        let mut hashes = 0usize;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) != Some(&'"') {
            return None; // r#ident or plain ident starting with r/br
        }
        let body_start = j + 1;
        let mut k = body_start;
        'scan: while k < chars.len() {
            if chars[k] == '"' {
                let mut h = 0usize;
                while h < hashes {
                    if chars.get(k + 1 + h) != Some(&'#') {
                        k += 1;
                        continue 'scan;
                    }
                    h += 1;
                }
                return Some((k + 1 + hashes, k == body_start));
            }
            k += 1;
        }
        Some((chars.len(), false))
    } else {
        // b"..."
        if chars.get(j) != Some(&'"') {
            return None;
        }
        let (end, empty) = cooked_string_end(chars, j);
        Some((end, empty))
    }
}

/// Disambiguate `'` at `chars[i]`: char literal or lifetime. Returns
/// the end index and the token kind.
fn char_or_lifetime(chars: &[char], i: usize) -> (usize, TokKind) {
    let lit = TokKind::Str { empty: false };
    match chars.get(i + 1) {
        None => (i + 1, TokKind::Punct('\'')),
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => return (j + 1, lit),
                    _ => j += 1,
                }
            }
            (chars.len(), lit)
        }
        Some(&c) if is_ident_start(c) => {
            // Ident run: 'a' is a char literal iff a quote follows it.
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            if chars.get(j) == Some(&'\'') {
                (j + 1, lit)
            } else {
                (j, TokKind::Lifetime)
            }
        }
        Some(_) => {
            // Single non-ident char: '(' , '0' … — a char literal if
            // closed immediately.
            if chars.get(i + 2) == Some(&'\'') {
                (i + 3, lit)
            } else {
                (i + 1, TokKind::Punct('\''))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_outside_literals_only() {
        let src = r##"let x = "HashMap"; let y = HashSet::new();"##;
        assert_eq!(idents(src), vec!["let", "x", "let", "y", "HashSet", "new"]);
    }

    #[test]
    fn line_and_block_comments_are_not_tokens() {
        let src = "// unsafe HashMap\n/* unwrap() */ let a = 1;";
        assert_eq!(idents(src), vec!["let", "a"]);
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].text, " unsafe HashMap");
        assert!(!lx.comments[0].trailing);
        assert_eq!(lx.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r####"let s = r#"contains "quotes" and unsafe"#; done"####;
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn raw_string_empty_detection() {
        let toks = lex(r###"let a = r""; let b = r#"x"#;"###).tokens;
        let strs: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Str { empty } => Some(empty),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![true, false]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r#"let a = b"unsafe"; let c = b'x'; let d = br#f;"#;
        // br#f is not a raw byte string — it lexes as ident `br`, punct
        // `#`, ident `f`.
        assert_eq!(
            idents(src),
            vec!["let", "a", "let", "c", "let", "d", "br", "f"]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lx = lex(src);
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars_ = lx
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Str { .. }))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars_, 1);
    }

    #[test]
    fn escaped_and_punct_char_literals() {
        let src = r"let a = '\n'; let b = '\''; let c = '('; let d = '\u{1F600}';";
        assert_eq!(
            idents(src),
            vec!["let", "a", "let", "b", "let", "c", "let", "d"]
        );
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let src = r#"let s = "a \" unsafe \" b"; next"#;
        assert_eq!(idents(src), vec!["let", "s", "next"]);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let src = "let s = \"line\nbreak\";\nunsafe_marker";
        let lx = lex(src);
        let last = lx.tokens.last().cloned();
        assert_eq!(
            last,
            Some(Token {
                line: 3,
                kind: TokKind::Ident("unsafe_marker".into())
            })
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..n { let f = 1.5e3; }";
        assert_eq!(idents(src), vec!["for", "i", "in", "n", "let", "f"]);
        // `0..n` keeps its two dot puncts.
        let dots = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn trailing_comment_flag() {
        let lx = lex("let a = 1; // trailing\n// standalone\nlet b = 2;");
        assert!(lx.comments[0].trailing);
        assert!(!lx.comments[1].trailing);
        assert_eq!(lx.next_token_line(2), Some(3));
    }

    #[test]
    fn unsafe_in_doc_comment_is_invisible() {
        let src = "/// This is unsafe to misuse.\nfn safe() {}";
        assert_eq!(idents(src), vec!["fn", "safe"]);
    }
}
