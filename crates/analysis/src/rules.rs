//! The rule set and the per-file analysis pass.
//!
//! Every rule matches on the lexed token stream (see [`crate::lexer`]),
//! never on raw text. Shared machinery:
//!
//! * **test regions** — `#[cfg(test)]` / `#[test]` items are located by
//!   brace matching over the token stream; rules that exempt test code
//!   skip diagnostics inside them;
//! * **bin/test paths** — `src/bin/`, `tests/`, `benches/`,
//!   `examples/`, `build.rs` and `main.rs` are exempt from the
//!   panic-surface rules by path;
//! * **suppressions** — `// lnpram-lint: allow(<rule>, reason = "…")`
//!   drops a diagnostic on its line (trailing comment) or on the next
//!   token line (standalone comment). A suppression without a
//!   non-empty reason is itself a diagnostic and suppresses nothing.

use crate::config::{Config, RuleCfg, Severity};
use crate::lexer::{lex, Lexed, TokKind, Token};
use std::fmt;

/// One finding, pointing at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_CLOCK: &str = "no-ambient-clock";
pub const RULE_RNG: &str = "no-ambient-rng";
pub const RULE_UNSAFE: &str = "unsafe-budget";
pub const RULE_PANIC: &str = "panic-surface";
pub const RULE_INDEX: &str = "slice-index";
pub const RULE_BAD_SUPPRESSION: &str = "bad-suppression";
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";

/// All suppressible rule names (what `allow(...)` may name).
pub const SUPPRESSIBLE: &[&str] = &[
    RULE_DETERMINISM,
    RULE_CLOCK,
    RULE_RNG,
    RULE_UNSAFE,
    RULE_PANIC,
    RULE_INDEX,
];

/// A parsed `lnpram-lint: allow(...)` directive.
#[derive(Debug)]
struct Suppression {
    /// Line of the comment itself.
    comment_line: u32,
    /// Line whose diagnostics it suppresses.
    target_line: Option<u32>,
    rule: String,
    reason: Option<String>,
    used: bool,
}

/// Is `path` (workspace-relative, `/`-separated) a binary, test,
/// bench or example source — exempt from the panic-surface rules?
fn is_bin_or_test_path(path: &str) -> bool {
    let parts: Vec<&str> = path.split('/').collect();
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples" | "bin"))
    {
        return true;
    }
    matches!(parts.last().copied(), Some("main.rs") | Some("build.rs"))
}

/// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
fn test_regions(lx: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lx.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut j = i + 1;
        if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('!'))) {
            // Inner attribute `#![...]` — never a test marker.
            i = j + 1;
            continue;
        }
        if !matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('['))) {
            i = j;
            continue;
        }
        // Collect the attribute body up to the matching ']'.
        let mut depth = 1usize;
        j += 1;
        let body_start = j;
        while j < toks.len() && depth > 0 {
            match toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let body = &toks[body_start..j.saturating_sub(1)];
        if is_test_attr(body) {
            if let Some(end) = item_end(toks, j) {
                regions.push((attr_line, toks[end].line));
                // Do not skip past the region: nested `#[test]` fns
                // inside a `#[cfg(test)] mod` are harmless duplicates.
            }
        }
        i = j;
    }
    regions
}

/// Does an attribute body mark test code? `test`, `cfg(test)`,
/// `cfg(all(test, ...))` — but not `cfg(not(test))`.
fn is_test_attr(body: &[Token]) -> bool {
    let idents: Vec<&str> = body
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// Token index of the end of the item starting at `start` (after its
/// attributes): the matching `}` of its first brace block, or the `;`
/// ending a block-less item. Skips over any further attributes.
fn item_end(toks: &[Token], mut start: usize) -> Option<usize> {
    // Skip stacked attributes `#[...]`.
    while matches!(toks.get(start).map(|t| &t.kind), Some(TokKind::Punct('#'))) {
        let mut j = start + 1;
        if !matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('['))) {
            break;
        }
        let mut depth = 1usize;
        j += 1;
        while j < toks.len() && depth > 0 {
            match toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        start = j;
    }
    let mut i = start;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(';') => return Some(i),
            TokKind::Punct('{') => {
                let mut depth = 1usize;
                let mut j = i + 1;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(j);
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return Some(toks.len() - 1);
            }
            _ => i += 1,
        }
    }
    None
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Parse every `lnpram-lint:` directive out of the comments.
fn parse_suppressions(lx: &Lexed, file: &str, diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &lx.comments {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) document the
        // directive syntax; they are never directive sites themselves.
        if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
            continue;
        }
        let Some(pos) = c.text.find("lnpram-lint:") else {
            continue;
        };
        let rest = c.text[pos + "lnpram-lint:".len()..].trim();
        let bad = |message: String, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                rule: RULE_BAD_SUPPRESSION,
                severity: Severity::Error,
                file: file.to_string(),
                line: c.line,
                message,
            });
        };
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        else {
            bad(
                format!("malformed directive '{rest}': expected lnpram-lint: allow(<rule>, reason = \"...\")"),
                diags,
            );
            continue;
        };
        let (rule, reason_part) = match args.split_once(',') {
            Some((r, rest)) => (r.trim(), Some(rest.trim())),
            None => (args.trim(), None),
        };
        if !SUPPRESSIBLE.contains(&rule) {
            bad(format!("allow() names unknown rule '{rule}'"), diags);
            continue;
        }
        let reason = match reason_part {
            None => None,
            Some(r) => {
                let Some(q) = r
                    .strip_prefix("reason")
                    .map(|r| r.trim_start())
                    .and_then(|r| r.strip_prefix('='))
                    .map(|r| r.trim())
                else {
                    bad(
                        format!("expected 'reason = \"...\"' after '{rule},'"),
                        diags,
                    );
                    continue;
                };
                let unquoted = q.strip_prefix('"').and_then(|q| q.strip_suffix('"'));
                match unquoted {
                    Some(text) => Some(text.to_string()),
                    None => {
                        bad("reason must be a quoted string".to_string(), diags);
                        continue;
                    }
                }
            }
        };
        let target_line = if c.trailing {
            Some(c.line)
        } else {
            lx.next_token_line(c.line)
        };
        out.push(Suppression {
            comment_line: c.line,
            target_line,
            rule: rule.to_string(),
            reason,
            used: false,
        });
    }
    out
}

/// Analyze one file. `path` is workspace-relative with `/` separators
/// (rule scoping keys on it); `src` is the file contents.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lx = lex(src);
    let regions = test_regions(&lx);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut suppressions = parse_suppressions(&lx, path, &mut diags);
    let mut findings: Vec<Diagnostic> = Vec::new();

    let toks = &lx.tokens;
    let ident = |i: usize| match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c);
    let nonempty_str = |i: usize| {
        matches!(
            toks.get(i).map(|t| &t.kind),
            Some(TokKind::Str { empty: false })
        )
    };

    let push = |findings: &mut Vec<Diagnostic>,
                rule: &'static str,
                r: &RuleCfg,
                line: u32,
                message: String| {
        findings.push(Diagnostic {
            rule,
            severity: r.severity,
            file: path.to_string(),
            line,
            message,
        });
    };

    // --- determinism: no iteration-order-nondeterministic containers ---
    let det = &cfg.determinism;
    if det.applies(path) {
        for (i, t) in toks.iter().enumerate() {
            if let TokKind::Ident(name) = &t.kind {
                if (name == "HashMap" || name == "HashSet") && !in_regions(&regions, t.line) {
                    let alt = if name == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    };
                    let _ = i;
                    push(
                        &mut findings,
                        RULE_DETERMINISM,
                        det,
                        t.line,
                        format!(
                            "{name} has nondeterministic iteration order — engine code must use \
                             {alt} or Vec (the serial/sharded bit-identity contracts depend on it)"
                        ),
                    );
                }
            }
        }
    }

    // --- no-ambient-clock: wall clocks only in the profiler sink ---
    let clock = &cfg.no_ambient_clock;
    if clock.applies(path) {
        for t in toks {
            if let TokKind::Ident(name) = &t.kind {
                if name == "Instant" || name == "SystemTime" {
                    push(
                        &mut findings,
                        RULE_CLOCK,
                        clock,
                        t.line,
                        format!(
                            "{name} is an ambient wall clock — engine results must be a pure \
                             function of inputs; clocks belong to the trace-sink profiler or the \
                             bench crate"
                        ),
                    );
                }
            }
        }
    }

    // --- no-ambient-rng: all randomness flows from seeded generators ---
    let rng = &cfg.no_ambient_rng;
    if rng.applies(path) {
        for t in toks {
            if let TokKind::Ident(name) = &t.kind {
                if matches!(
                    name.as_str(),
                    "thread_rng" | "from_entropy" | "OsRng" | "getrandom"
                ) {
                    push(
                        &mut findings,
                        RULE_RNG,
                        rng,
                        t.line,
                        format!(
                            "{name} draws ambient OS randomness — all randomness must flow from a \
                             seeded SplitMix64/SeedSeq so every run is replayable"
                        ),
                    );
                }
            }
        }
    }

    // --- unsafe-budget: `unsafe` only in the budget file, count pinned ---
    let ub = &cfg.unsafe_budget;
    if ub.applies(path) {
        let sites: Vec<u32> = toks
            .iter()
            .filter(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unsafe"))
            .map(|t| t.line)
            .collect();
        if path == cfg.budget_file {
            if sites.len() != cfg.budget_count {
                push(
                    &mut findings,
                    RULE_UNSAFE,
                    ub,
                    sites.last().copied().unwrap_or(1),
                    format!(
                        "unsafe budget drift: {} has {} `unsafe` token(s), lint.toml pins {} — \
                         changing the unsafe surface must be a conscious config diff",
                        path,
                        sites.len(),
                        cfg.budget_count
                    ),
                );
            }
        } else {
            for line in sites {
                push(
                    &mut findings,
                    RULE_UNSAFE,
                    ub,
                    line,
                    format!(
                        "`unsafe` outside the budget file ({}) — the workspace's entire unsafe \
                         surface is the WorkerPool's scoped-job lifetime erasure",
                        cfg.budget_file
                    ),
                );
            }
        }
    }

    // --- panic-surface + slice-index (library, non-test, non-bin code) ---
    let ps = &cfg.panic_surface;
    let si = &cfg.slice_index;
    let surface_applies = !is_bin_or_test_path(path);
    if surface_applies && (ps.applies(path) || si.applies(path)) {
        let mut i = 0usize;
        while i < toks.len() {
            let line = toks[i].line;
            let tested = in_regions(&regions, line);
            if !tested && ps.applies(path) {
                // .unwrap( …
                if punct(i, '.') && ident(i + 1) == Some("unwrap") && punct(i + 2, '(') {
                    push(
                        &mut findings,
                        RULE_PANIC,
                        ps,
                        toks[i + 1].line,
                        "bare .unwrap() in library code — return a typed error, use \
                         .expect(\"why this cannot fail\"), or suppress with a reason"
                            .to_string(),
                    );
                    i += 3;
                    continue;
                }
                // .expect(<non-empty string>) carries its reason inline;
                // anything else (empty or computed message) does not.
                if punct(i, '.') && ident(i + 1) == Some("expect") && punct(i + 2, '(') {
                    if !nonempty_str(i + 3) {
                        push(
                            &mut findings,
                            RULE_PANIC,
                            ps,
                            toks[i + 1].line,
                            ".expect() without a literal non-empty message — the message is the \
                             panic's documented reason"
                                .to_string(),
                        );
                    }
                    i += 3;
                    continue;
                }
                // panic!/unreachable! need a message; todo!/unimplemented!
                // are stubs and always flagged.
                if let Some(name) = ident(i) {
                    if punct(i + 1, '!') {
                        match name {
                            "todo" | "unimplemented" => {
                                push(
                                    &mut findings,
                                    RULE_PANIC,
                                    ps,
                                    line,
                                    format!("{name}! is a stub — library code must not ship one"),
                                );
                                i += 2;
                                continue;
                            }
                            "panic" | "unreachable" => {
                                let open = matches!(
                                    toks.get(i + 2).map(|t| &t.kind),
                                    Some(TokKind::Punct('('))
                                        | Some(TokKind::Punct('['))
                                        | Some(TokKind::Punct('{'))
                                );
                                if !open || !nonempty_str(i + 3) {
                                    push(
                                        &mut findings,
                                        RULE_PANIC,
                                        ps,
                                        line,
                                        format!(
                                            "{name}! without a literal message — state the \
                                             violated invariant so the abort is self-explaining"
                                        ),
                                    );
                                }
                                i += 2;
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
            }
            if !tested && si.applies(path) && punct(i, '[') && i > 0 {
                let indexish = match &toks[i - 1].kind {
                    TokKind::Ident(_) => true,
                    TokKind::Punct(p) => matches!(p, ')' | ']'),
                    _ => false,
                };
                if indexish {
                    push(
                        &mut findings,
                        RULE_INDEX,
                        si,
                        line,
                        "slice indexing can panic — prefer .get()/.get_mut() with a typed error \
                         in library code"
                            .to_string(),
                    );
                }
            }
            i += 1;
        }
    }

    // --- apply suppressions ---
    findings.retain(|d| {
        for s in suppressions.iter_mut() {
            if s.rule == d.rule
                && s.target_line == Some(d.line)
                && s.reason.as_deref().is_some_and(|r| !r.trim().is_empty())
            {
                s.used = true;
                return false;
            }
        }
        true
    });
    for s in &suppressions {
        let has_reason = s.reason.as_deref().is_some_and(|r| !r.trim().is_empty());
        if !has_reason {
            diags.push(Diagnostic {
                rule: RULE_BAD_SUPPRESSION,
                severity: Severity::Error,
                file: path.to_string(),
                line: s.comment_line,
                message: format!(
                    "allow({}) without a reason — suppressions must say why: \
                     lnpram-lint: allow({}, reason = \"...\")",
                    s.rule, s.rule
                ),
            });
        } else if !s.used && cfg.warn_unused_suppressions {
            diags.push(Diagnostic {
                rule: RULE_UNUSED_SUPPRESSION,
                severity: Severity::Warn,
                file: path.to_string(),
                line: s.comment_line,
                message: format!("allow({}) suppresses nothing on its target line", s.rule),
            });
        }
    }

    diags.extend(findings);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &cfg())
    }

    #[test]
    fn test_region_detection_spans_mod_and_fn() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n#[test]\nfn t() {}\n";
        let lx = lex(src);
        let regions = test_regions(&lx);
        assert!(in_regions(&regions, 4), "inside mod tests");
        assert!(in_regions(&regions, 7), "inside #[test] fn");
        assert!(!in_regions(&regions, 1), "fn a is live code");
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let d = lint("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == RULE_PANIC), "{d:?}");
    }

    #[test]
    fn suppression_trailing_and_standalone() {
        let src = "\
fn f(v: Vec<u32>) {
    v.first().unwrap(); // lnpram-lint: allow(panic-surface, reason = \"checked by caller\")
    // lnpram-lint: allow(panic-surface, reason = \"fixture\")
    v.last().unwrap();
}\n";
        let d = lint("crates/core/src/x.rs", src);
        assert!(d.iter().all(|d| d.rule != RULE_PANIC), "{d:?}");
    }

    #[test]
    fn suppression_without_reason_is_error_and_inert() {
        let src = "fn f(v: Vec<u32>) {\n    v.first().unwrap(); // lnpram-lint: allow(panic-surface)\n}\n";
        let d = lint("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == RULE_BAD_SUPPRESSION));
        assert!(d.iter().any(|d| d.rule == RULE_PANIC), "must not suppress");
    }

    #[test]
    fn doc_comments_are_not_directive_sites() {
        let src = "\
//! Inline `lnpram-lint: allow(<rule>, reason = \"...\")` syntax docs.
/// Mentions lnpram-lint: allow(bogus) in passing.
fn f() {}\n";
        let d = lint("crates/core/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_error() {
        let src = "fn f() {} // lnpram-lint: allow(no-such-rule, reason = \"x\")\n";
        let d = lint("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == RULE_BAD_SUPPRESSION));
    }

    #[test]
    fn unused_suppression_warns() {
        let src = "// lnpram-lint: allow(determinism, reason = \"nothing here\")\nfn f() {}\n";
        let d = lint("crates/simnet/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == RULE_UNUSED_SUPPRESSION));
    }

    #[test]
    fn expect_message_is_the_reason() {
        let good = "fn f(v: Vec<u32>) { v.first().expect(\"v is non-empty by construction\"); }";
        assert!(lint("crates/core/src/x.rs", good).is_empty());
        let empty = "fn f(v: Vec<u32>) { v.first().expect(\"\"); }";
        assert!(lint("crates/core/src/x.rs", empty)
            .iter()
            .any(|d| d.rule == RULE_PANIC));
        let computed = "fn f(v: Vec<u32>, m: String) { v.first().expect(&m); }";
        assert!(lint("crates/core/src/x.rs", computed)
            .iter()
            .any(|d| d.rule == RULE_PANIC));
    }

    #[test]
    fn bins_tests_benches_are_exempt_from_panic_surface() {
        let src = "fn main() { std::env::args().next().unwrap(); }";
        assert!(lint("src/bin/lnpram.rs", src).is_empty());
        assert!(lint("crates/routing/tests/t.rs", src).is_empty());
        assert!(lint("crates/bench/benches/b.rs", src).is_empty());
        assert!(lint("examples/e.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_budget_file_flagged() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        let d = lint("crates/shard/src/engine.rs", src);
        assert!(d.iter().any(|d| d.rule == RULE_UNSAFE), "{d:?}");
    }

    #[test]
    fn unsafe_budget_drift_both_directions() {
        let mut c = cfg();
        c.budget_file = "crates/simnet/src/worker.rs".into();
        c.budget_count = 2;
        let two = "unsafe impl Send for X {}\nfn f() { unsafe { g() } }";
        assert!(lint_source("crates/simnet/src/worker.rs", two, &c).is_empty());
        let one = "fn f() { unsafe { g() } }";
        assert!(lint_source("crates/simnet/src/worker.rs", one, &c)
            .iter()
            .any(|d| d.rule == RULE_UNSAFE));
        let three =
            "unsafe impl Send for X {}\nunsafe impl Sync for X {}\nfn f() { unsafe { g() } }";
        assert!(lint_source("crates/simnet/src/worker.rs", three, &c)
            .iter()
            .any(|d| d.rule == RULE_UNSAFE));
    }

    #[test]
    fn unsafe_code_lint_name_is_not_the_keyword() {
        // `#![allow(unsafe_code)]` must not count against the budget.
        let src = "#![allow(unsafe_code)]\nfn f() {}\n";
        let mut c = cfg();
        c.budget_count = 0;
        assert!(lint_source("crates/simnet/src/worker.rs", src, &c).is_empty());
    }

    #[test]
    fn slice_index_rule_when_enabled() {
        let mut c = cfg();
        c.slice_index.severity = Severity::Error;
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        let d = lint_source("crates/core/src/x.rs", src, &c);
        assert!(d.iter().any(|d| d.rule == RULE_INDEX), "{d:?}");
        // Attributes, array types and vec! are not indexing.
        let ok = "#[derive(Clone)]\nstruct S { a: [u32; 4] }\nfn g() { let v = vec![0u32; 4]; drop(v); }";
        let d = lint_source("crates/core/src/x.rs", ok, &c);
        assert!(d.iter().all(|d| d.rule != RULE_INDEX), "{d:?}");
    }

    #[test]
    fn determinism_exempts_test_regions() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\n";
        assert!(lint("crates/topology/src/star.rs", src).is_empty());
        let live = "use std::collections::HashMap;\n";
        assert!(!lint("crates/topology/src/star.rs", live).is_empty());
        // Out of the configured crates: no finding.
        assert!(lint("crates/pram/src/machine.rs", live).is_empty());
    }

    #[test]
    fn clock_rule_exempts_trace_and_bench() {
        let src = "use std::time::Instant;\n";
        assert!(lint("crates/simnet/src/trace.rs", src).is_empty());
        assert!(lint("crates/bench/src/bin/b.rs", src).is_empty());
        assert!(!lint("crates/routing/src/serve.rs", src).is_empty());
    }
}
