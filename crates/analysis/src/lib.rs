//! `lnpram-lint`: a workspace invariant checker for the lnpram tree.
//!
//! The headline contracts of this reproduction — serial vs sharded
//! bit-identity, per-tenant batch identity, fixed-trace delivery
//! schedules, chaos bit-identity, trace neutrality — all rest on
//! source-level invariants no compiler checks: engine code must not
//! iterate hash containers, must not read wall clocks or ambient
//! randomness, and the entire `unsafe` surface must stay pinned to the
//! WorkerPool. This crate enforces those invariants mechanically, at
//! the token level (a hand-rolled string/char/comment-aware lexer; the
//! build environment has no crates.io access, so no `syn`).
//!
//! Layers:
//! * [`lexer`] — Rust tokens + comments, literal-aware;
//! * [`config`] — `lint.toml` rule scoping and severities;
//! * [`rules`] — the rule matchers and suppression handling;
//! * [`lint_workspace`] — deterministic file walk + aggregation.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError, Severity};
pub use rules::{lint_source, Diagnostic};

use std::path::{Path, PathBuf};

/// Everything one run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Files actually analyzed (workspace-relative, sorted).
    pub files: Vec<String>,
}

impl LintReport {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Does the run fail (any error-severity diagnostic)?
    pub fn failed(&self) -> bool {
        self.errors() > 0
    }
}

/// An I/O-level failure (unreadable file, bad root).
#[derive(Debug)]
pub struct LintError {
    pub path: PathBuf,
    pub message: String,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for LintError {}

/// Lint the workspace rooted at `root`. When `only` is non-empty, the
/// walk is restricted to files whose workspace-relative path starts
/// with one of the given prefixes (still subject to the config's
/// exclude list).
pub fn lint_workspace(root: &Path, cfg: &Config, only: &[String]) -> Result<LintReport, LintError> {
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.exists() {
            collect_rs_files(root, &dir, cfg, &mut files)?;
        }
    }
    // Deterministic order: the diagnostics stream must be stable across
    // runs and machines, same as every other output in this tree.
    files.sort();
    files.dedup();

    let mut report = LintReport::default();
    for rel in files {
        if !only.is_empty()
            && !only
                .iter()
                .any(|p| config::path_has_prefix(&rel, p.trim_end_matches('/')))
        {
            continue;
        }
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs).map_err(|e| LintError {
            path: abs.clone(),
            message: e.to_string(),
        })?;
        report
            .diagnostics
            .extend(rules::lint_source(&rel, &src, cfg));
        report.files.push(rel);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collect `.rs` files under `dir`, as workspace-relative
/// `/`-separated strings.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        let Some(rel) = relative_slash(root, &path) else {
            continue;
        };
        if cfg.exclude.iter().any(|p| config::path_has_prefix(&rel, p)) {
            continue;
        }
        let ty = entry.file_type().map_err(|e| LintError {
            path: path.clone(),
            message: e.to_string(),
        })?;
        if ty.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file() && rel.ends_with(".rs") {
            // Fixture files are deliberately-broken inputs for the
            // self-tests; never lint them as first-party sources.
            if rel.contains("/fixtures/") {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated; `None` for non-UTF-8.
fn relative_slash(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel.to_str()?;
    Some(s.replace(std::path::MAIN_SEPARATOR, "/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_by_severity() {
        let mut r = LintReport::default();
        r.diagnostics.push(Diagnostic {
            rule: "determinism",
            severity: Severity::Error,
            file: "a.rs".into(),
            line: 1,
            message: "x".into(),
        });
        r.diagnostics.push(Diagnostic {
            rule: "unused-suppression",
            severity: Severity::Warn,
            file: "a.rs".into(),
            line: 2,
            message: "y".into(),
        });
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.failed());
    }
}
