//! Config-driven rule set: severities, path scopes, and the unsafe
//! budget, loaded from `lint.toml` at the workspace root.
//!
//! The container has no crates.io access, so this is a hand-rolled
//! parser for the small TOML subset the config needs: `[section]`
//! headers, `key = "string" | integer | true/false | ["array", "of",
//! "strings"]`, and `#` comments. Unknown sections or keys are hard
//! errors — a typo in a rule name must not silently disable it.

use std::fmt;
use std::path::Path;

/// How a rule's findings are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Rule disabled.
    Off,
    /// Reported, but does not fail the run.
    Warn,
    /// Reported and fails the run (nonzero exit).
    Error,
}

impl Severity {
    fn parse(s: &str) -> Option<Severity> {
        match s {
            "off" => Some(Severity::Off),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Off => write!(f, "off"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Scope + severity of one rule.
#[derive(Debug, Clone)]
pub struct RuleCfg {
    pub severity: Severity,
    /// Workspace-relative path prefixes the rule applies to. Empty =
    /// everywhere the walker visits.
    pub paths: Vec<String>,
    /// Workspace-relative path prefixes exempt from the rule (stronger
    /// than `paths`).
    pub exempt: Vec<String>,
}

impl RuleCfg {
    fn new(severity: Severity) -> Self {
        RuleCfg {
            severity,
            paths: Vec::new(),
            exempt: Vec::new(),
        }
    }

    /// Does the rule apply to `path` (workspace-relative, `/`-separated)?
    pub fn applies(&self, path: &str) -> bool {
        if self.severity == Severity::Off {
            return false;
        }
        if self.exempt.iter().any(|p| path_has_prefix(path, p)) {
            return false;
        }
        self.paths.is_empty() || self.paths.iter().any(|p| path_has_prefix(path, p))
    }
}

/// Prefix match on path components: `crates/simnet` matches
/// `crates/simnet/src/engine.rs` but not `crates/simnet2/...`.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

/// The whole lint configuration. `Config::default()` is the workspace
/// policy compiled in; `lint.toml` overrides it field by field.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) the file walker descends into.
    pub include: Vec<String>,
    /// Path prefixes the walker skips entirely (third-party/vendored
    /// code and build output).
    pub exclude: Vec<String>,
    pub determinism: RuleCfg,
    pub no_ambient_clock: RuleCfg,
    pub no_ambient_rng: RuleCfg,
    pub unsafe_budget: RuleCfg,
    /// The one file allowed to contain `unsafe` tokens.
    pub budget_file: String,
    /// Exactly how many `unsafe` tokens that file may contain. Any
    /// drift — up *or* down — is a diagnostic, so changing the unsafe
    /// surface is always a conscious `lint.toml` diff.
    pub budget_count: usize,
    pub panic_surface: RuleCfg,
    pub slice_index: RuleCfg,
    /// Warn about suppression comments that match no diagnostic.
    pub warn_unused_suppressions: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            include: vec![
                "src".into(),
                "crates".into(),
                "tests".into(),
                "examples".into(),
            ],
            exclude: vec!["vendor".into(), "target".into()],
            determinism: RuleCfg {
                severity: Severity::Error,
                paths: vec![
                    "crates/simnet/src".into(),
                    "crates/shard/src".into(),
                    "crates/routing/src".into(),
                    "crates/topology/src".into(),
                ],
                exempt: Vec::new(),
            },
            no_ambient_clock: RuleCfg {
                severity: Severity::Error,
                paths: Vec::new(),
                exempt: vec![
                    "crates/simnet/src/trace.rs".into(),
                    "crates/bench".into(),
                    // Examples are demo harnesses that report wall time,
                    // same as bench bins — they never feed engine state.
                    "examples".into(),
                ],
            },
            no_ambient_rng: RuleCfg::new(Severity::Error),
            unsafe_budget: RuleCfg::new(Severity::Error),
            budget_file: "crates/simnet/src/worker.rs".into(),
            budget_count: 3,
            panic_surface: RuleCfg {
                severity: Severity::Error,
                paths: vec!["crates".into(), "src".into()],
                exempt: vec!["crates/bench".into()],
            },
            slice_index: RuleCfg {
                severity: Severity::Off,
                paths: vec!["crates".into(), "src".into()],
                exempt: vec!["crates/bench".into()],
            },
            warn_unused_suppressions: true,
        }
    }
}

/// A config-file problem: `file:line: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed value.
enum Value {
    Str(String),
    Int(usize),
    Bool(bool),
    List(Vec<String>),
}

impl Config {
    /// Load `lint.toml` from `root` if present, else the built-in
    /// defaults.
    pub fn load(root: &Path) -> Result<Config, ConfigError> {
        let path = root.join("lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => Config::parse(&text),
            Err(_) => Ok(Config::default()),
        }
    }

    /// Parse a `lint.toml` document over the built-in defaults.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("malformed section header '{raw}'"),
                })?;
                section = name.trim().to_string();
                cfg.check_section(&section, lineno)?;
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected 'key = value', got '{raw}'"),
            })?;
            let key = key.trim();
            let value = parse_value(value.trim(), lineno)?;
            cfg.apply(&section, key, value, lineno)?;
        }
        Ok(cfg)
    }

    fn check_section(&self, section: &str, line: u32) -> Result<(), ConfigError> {
        match section {
            "files" | "determinism" | "no-ambient-clock" | "no-ambient-rng" | "unsafe-budget"
            | "panic-surface" | "slice-index" | "suppressions" => Ok(()),
            other => Err(ConfigError {
                line,
                message: format!("unknown section [{other}]"),
            }),
        }
    }

    fn rule_mut(&mut self, section: &str) -> Option<&mut RuleCfg> {
        match section {
            "determinism" => Some(&mut self.determinism),
            "no-ambient-clock" => Some(&mut self.no_ambient_clock),
            "no-ambient-rng" => Some(&mut self.no_ambient_rng),
            "unsafe-budget" => Some(&mut self.unsafe_budget),
            "panic-surface" => Some(&mut self.panic_surface),
            "slice-index" => Some(&mut self.slice_index),
            _ => None,
        }
    }

    fn apply(
        &mut self,
        section: &str,
        key: &str,
        value: Value,
        line: u32,
    ) -> Result<(), ConfigError> {
        let err = |message: String| Err(ConfigError { line, message });
        match (section, key) {
            ("files", "include") => match value {
                Value::List(v) => {
                    self.include = v;
                    Ok(())
                }
                _ => err("files.include must be a string array".into()),
            },
            ("files", "exclude") => match value {
                Value::List(v) => {
                    self.exclude = v;
                    Ok(())
                }
                _ => err("files.exclude must be a string array".into()),
            },
            ("suppressions", "warn-unused") => match value {
                Value::Bool(b) => {
                    self.warn_unused_suppressions = b;
                    Ok(())
                }
                _ => err("suppressions.warn-unused must be a bool".into()),
            },
            ("unsafe-budget", "file") => match value {
                Value::Str(s) => {
                    self.budget_file = s;
                    Ok(())
                }
                _ => err("unsafe-budget.file must be a string".into()),
            },
            ("unsafe-budget", "count") => match value {
                Value::Int(n) => {
                    self.budget_count = n;
                    Ok(())
                }
                _ => err("unsafe-budget.count must be an integer".into()),
            },
            (rule, "severity") => {
                let Value::Str(s) = value else {
                    return err("severity must be a string".into());
                };
                let sev = Severity::parse(&s).ok_or_else(|| ConfigError {
                    line,
                    message: format!("severity must be off/warn/error, got '{s}'"),
                })?;
                match self.rule_mut(rule) {
                    Some(r) => {
                        r.severity = sev;
                        Ok(())
                    }
                    None => err(format!("severity not valid in section [{rule}]")),
                }
            }
            (rule, "paths") | (rule, "exempt") => {
                let Value::List(v) = value else {
                    return err(format!("{key} must be a string array"));
                };
                match self.rule_mut(rule) {
                    Some(r) => {
                        if key == "paths" {
                            r.paths = v;
                        } else {
                            r.exempt = v;
                        }
                        Ok(())
                    }
                    None => err(format!("{key} not valid in section [{rule}]")),
                }
            }
            (section, key) => err(format!("unknown key '{key}' in section [{section}]")),
        }
    }
}

/// Strip a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str, line: u32) -> Result<Value, ConfigError> {
    let err = |message: String| Err(ConfigError { line, message });
    if let Some(body) = s.strip_prefix('[') {
        let body = match body.strip_suffix(']') {
            Some(b) => b,
            None => return err(format!("unterminated array '{s}' (arrays are single-line)")),
        };
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::Str(v) => items.push(v),
                _ => return err("arrays may contain only strings".into()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = match body.strip_suffix('"') {
            Some(b) => b,
            None => return err(format!("unterminated string {s}")),
        };
        return Ok(Value::Str(body.to_string()));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    match s.parse::<usize>() {
        Ok(n) => Ok(Value::Int(n)),
        Err(_) => err(format!("cannot parse value '{s}'")),
    }
}

/// Split on commas outside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scope_engine_crates() {
        let cfg = Config::default();
        assert!(cfg.determinism.applies("crates/simnet/src/engine.rs"));
        assert!(cfg.determinism.applies("crates/routing/src/ranade.rs"));
        assert!(!cfg.determinism.applies("crates/pram/src/machine.rs"));
        assert!(!cfg.no_ambient_clock.applies("crates/simnet/src/trace.rs"));
        assert!(cfg.no_ambient_clock.applies("crates/simnet/src/engine.rs"));
        assert!(!cfg.no_ambient_clock.applies("crates/bench/src/lib.rs"));
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        assert!(path_has_prefix("crates/simnet/src/a.rs", "crates/simnet"));
        assert!(!path_has_prefix("crates/simnet2/src/a.rs", "crates/simnet"));
        assert!(path_has_prefix("crates/simnet", "crates/simnet"));
    }

    #[test]
    fn parse_overrides_defaults() {
        let cfg = Config::parse(
            r#"
# workspace lint policy
[determinism]
severity = "warn"
paths = ["crates/simnet/src"]   # tighter scope

[unsafe-budget]
file = "crates/other/src/x.rs"
count = 7

[slice-index]
severity = "error"

[suppressions]
warn-unused = false
"#,
        )
        .expect("parses");
        assert_eq!(cfg.determinism.severity, Severity::Warn);
        assert_eq!(cfg.determinism.paths, vec!["crates/simnet/src".to_string()]);
        assert_eq!(cfg.budget_file, "crates/other/src/x.rs");
        assert_eq!(cfg.budget_count, 7);
        assert_eq!(cfg.slice_index.severity, Severity::Error);
        assert!(!cfg.warn_unused_suppressions);
        // Untouched rules keep their defaults.
        assert_eq!(cfg.no_ambient_rng.severity, Severity::Error);
    }

    #[test]
    fn unknown_section_and_key_are_errors() {
        assert!(Config::parse("[determinsim]\nseverity = \"off\"").is_err());
        assert!(Config::parse("[determinism]\nseverty = \"off\"").is_err());
        assert!(Config::parse("[determinism]\nseverity = \"loud\"").is_err());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = Config::parse("[unsafe-budget]\nfile = \"a#b.rs\"").expect("parses");
        assert_eq!(cfg.budget_file, "a#b.rs");
    }
}
