//! `lnpram-lint` — run the workspace invariant checker from the
//! command line.
//!
//! ```text
//! lnpram-lint [--root DIR] [--config FILE] [PATH ...]
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 any error-severity
//! diagnostic, 2 usage / config / I/O failure.

#![forbid(unsafe_code)]

use lnpram_analysis::{lint_workspace, Config};
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
lnpram-lint: workspace invariant checker (determinism, unsafe budget, panic surface)

USAGE:
    lnpram-lint [OPTIONS] [PATH ...]

OPTIONS:
    --root DIR       workspace root (default: current directory)
    --config FILE    lint config (default: <root>/lint.toml, else built-in policy)
    --list-files     print the files that would be analyzed, then exit
    -q, --quiet      suppress the summary line
    -h, --help       show this help

PATH arguments restrict the run to files under the given
workspace-relative prefixes (e.g. `crates/simnet`).

Suppress a finding inline, with a mandatory reason:
    // lnpram-lint: allow(panic-surface, reason = \"length checked above\")
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut list_files = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root requires a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config requires a file"),
            },
            "--list-files" => list_files = true,
            "-q" | "--quiet" => quiet = true,
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag '{other}'"));
            }
            path => only.push(path.trim_end_matches('/').to_string()),
        }
    }

    let cfg = match config_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match Config::parse(&text) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("lnpram-lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("lnpram-lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => match Config::load(&root) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("lnpram-lint: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let report = match lint_workspace(&root, &cfg, &only) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lnpram-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if list_files {
        for f in &report.files {
            println!("{f}");
        }
        return ExitCode::SUCCESS;
    }

    for d in &report.diagnostics {
        println!("{d}");
    }
    if !quiet {
        println!(
            "lnpram-lint: {} file(s), {} error(s), {} warning(s)",
            report.files.len(),
            report.errors(),
            report.warnings()
        );
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lnpram-lint: {msg}\n\n{HELP}");
    ExitCode::from(2)
}
