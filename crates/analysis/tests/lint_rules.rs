//! Fixture self-tests: every rule must fire on its seeded violation
//! file, stay quiet on the clean file, and respect (or reject)
//! suppressions — plus end-to-end exit-code checks of the
//! `lnpram-lint` binary, including "the committed workspace is clean".

use lnpram_analysis::config::Severity;
use lnpram_analysis::{lint_source, Config, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lint a fixture as if it lived at an in-scope engine path.
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    lint_source(
        "crates/simnet/src/fixture.rs",
        &fixture(name),
        &Config::default(),
    )
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn determinism_positive() {
    let d = lint_fixture("determinism_violation.rs");
    assert!(!d.is_empty());
    assert!(d.iter().all(|d| d.rule == "determinism"), "{d:?}");
    // One finding per HashMap/HashSet token: use sites count, not just files.
    assert!(d.len() >= 4, "{d:?}");
}

#[test]
fn determinism_suppressed() {
    let d = lint_fixture("determinism_suppressed.rs");
    assert!(d.is_empty(), "reasoned allow must drop the finding: {d:?}");
}

#[test]
fn clock_positive() {
    let d = lint_fixture("clock_violation.rs");
    assert!(d.iter().any(|d| d.rule == "no-ambient-clock"), "{d:?}");
    // The same fixture's `.unwrap_or(0)` must NOT trip panic-surface:
    // maximal-munch keeps `unwrap_or` distinct from `unwrap`.
    assert!(d.iter().all(|d| d.rule == "no-ambient-clock"), "{d:?}");
}

#[test]
fn clock_exempt_in_trace_sink() {
    let d = lint_source(
        "crates/simnet/src/trace.rs",
        &fixture("clock_violation.rs"),
        &Config::default(),
    );
    assert!(d.is_empty(), "trace.rs is the sanctioned clock sink: {d:?}");
}

#[test]
fn rng_positive() {
    let d = lint_fixture("rng_violation.rs");
    assert_eq!(rules_of(&d), vec!["no-ambient-rng"], "{d:?}");
}

#[test]
fn unsafe_positive_outside_budget_file() {
    let d = lint_fixture("unsafe_violation.rs");
    assert_eq!(rules_of(&d), vec!["unsafe-budget"], "{d:?}");
}

#[test]
fn unsafe_budget_file_pins_exact_count() {
    let cfg = Config::default();
    let src = fixture("unsafe_violation.rs"); // one `unsafe` token
    let d = lint_source(&cfg.budget_file.clone(), &src, &cfg);
    assert_eq!(
        rules_of(&d),
        vec!["unsafe-budget"],
        "1 token vs pinned {}: must drift: {d:?}",
        cfg.budget_count
    );
}

#[test]
fn panic_positive() {
    let d = lint_fixture("panic_violation.rs");
    assert_eq!(rules_of(&d), vec!["panic-surface"], "{d:?}");
    assert_eq!(
        d.len(),
        4,
        "unwrap, empty expect, bare panic!, todo!: {d:?}"
    );
}

#[test]
fn clean_fixture_is_clean() {
    let d = lint_fixture("clean.rs");
    assert!(
        d.is_empty(),
        "decoys in literals/comments/tests fired: {d:?}"
    );
}

#[test]
fn suppression_without_reason_errors_and_does_not_suppress() {
    let d = lint_fixture("suppression_no_reason.rs");
    assert!(d.iter().any(|d| d.rule == "bad-suppression"), "{d:?}");
    assert!(d.iter().any(|d| d.rule == "panic-surface"), "{d:?}");
}

#[test]
fn slice_index_fires_only_when_enabled() {
    let src = fixture("slice_index_violation.rs");
    let off = lint_source("crates/simnet/src/fixture.rs", &src, &Config::default());
    assert!(off.is_empty(), "slice-index defaults Off: {off:?}");
    let mut cfg = Config::default();
    cfg.slice_index.severity = Severity::Error;
    let on = lint_source("crates/simnet/src/fixture.rs", &src, &cfg);
    assert_eq!(rules_of(&on), vec!["slice-index"], "{on:?}");
}

// ---------------------------------------------------------------------
// End-to-end binary checks
// ---------------------------------------------------------------------

fn run_lint(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lnpram-lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("lnpram-lint binary runs")
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_clean");
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "clean mini-workspace must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_exits_nonzero_on_seeded_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_bad");
    let out = run_lint(&root);
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded mini-workspace must fail:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism",
        "no-ambient-clock",
        "no-ambient-rng",
        "unsafe-budget",
        "panic-surface",
    ] {
        assert!(
            text.contains(&format!("[{rule}]")),
            "missing {rule}:\n{text}"
        );
    }
    // Diagnostics carry clickable file:line anchors.
    assert!(
        text.contains("crates/simnet/src/engine.rs:"),
        "missing file:line anchors:\n{text}"
    );
}

#[test]
fn binary_exits_two_on_bad_config() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_clean");
    let cfg = root.join("no-such-lint.toml");
    let out = Command::new(env!("CARGO_BIN_EXE_lnpram-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--config")
        .arg(&cfg)
        .output()
        .expect("lnpram-lint binary runs");
    assert_eq!(out.status.code(), Some(2));
}

/// The acceptance criterion itself: the committed workspace lints
/// clean under the committed `lint.toml`.
#[test]
fn committed_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf();
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "the committed tree must lint clean:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
