// Fixture: negative case for every rule at once. Decoys that a naive
// text scanner would flag live only inside literals, comments, and
// test code — a token-level, literal-aware pass must report nothing.
use std::collections::BTreeMap;

/// Mentions HashMap, Instant::now, thread_rng and unsafe — in a doc
/// comment, which is not code.
pub fn table() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

pub fn describe() -> &'static str {
    // The strings below are data, not code.
    let _raw = r#"HashSet::new() and .unwrap() and unsafe { }"#;
    let _byte = b"thread_rng SystemTime";
    let _ch = 'u';
    "HashMap<Instant, SystemTime>"
}

pub fn checked(v: &[u32]) -> u32 {
    *v.first().expect("v is non-empty: caller guarantees one element")
}

pub fn invariant(x: u32) -> u32 {
    match x {
        0 => unreachable!("x is validated nonzero at the API boundary"),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        assert!(m.get(&0).is_none());
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
