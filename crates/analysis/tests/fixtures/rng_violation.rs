// Fixture: no-ambient-rng rule, positive case. Ambient OS randomness
// must be flagged — every run must be replayable from its seed.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
