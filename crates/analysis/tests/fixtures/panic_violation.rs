// Fixture: panic-surface rule, positive cases. Bare unwrap, empty
// expect, message-less panic!, and stub macros in library code must
// all be flagged.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn head(v: &[u32]) -> u32 {
    *v.first().expect("")
}

pub fn boom() {
    panic!();
}

pub fn later() {
    todo!()
}
