// Seeded mini-workspace: a clean engine file. `lnpram-lint --root`
// pointed here must exit 0.
use std::collections::BTreeMap;

pub fn step(queues: &mut BTreeMap<u32, Vec<u32>>) -> usize {
    queues.values().map(Vec::len).sum()
}
