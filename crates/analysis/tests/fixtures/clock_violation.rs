// Fixture: no-ambient-clock rule, positive case. Wall clocks outside
// the trace sink / bench crate must be flagged.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
