// Fixture: unsafe-budget rule, positive case. An `unsafe` token in any
// file other than the pinned budget file must be flagged.
pub fn peek(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}
