// Fixture: determinism rule, positive case. HashMap/HashSet in engine
// code must be flagged (nondeterministic iteration order would break
// the serial-vs-sharded bit-identity contract).
use std::collections::{HashMap, HashSet};

pub fn route_table() -> HashMap<u32, u32> {
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(1);
    HashMap::new()
}
