// Fixture: determinism rule, suppressed case. The allow carries a
// reason, so the finding is dropped and the file is clean.
use std::collections::BTreeMap;

pub fn scratch() {
    // lnpram-lint: allow(determinism, reason = "drained into a sorted Vec before any iteration")
    let _ids: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let _table: BTreeMap<u32, u32> = BTreeMap::new();
}
