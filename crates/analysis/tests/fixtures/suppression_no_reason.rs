// Fixture: a suppression without a reason is itself an error AND
// suppresses nothing — the underlying finding must still be reported.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap() // lnpram-lint: allow(panic-surface)
}
