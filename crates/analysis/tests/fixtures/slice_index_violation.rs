// Fixture: slice-index rule (severity Off in the default policy; the
// self-test enables it explicitly). Direct indexing can panic.
pub fn pick(v: &[u32], i: usize) -> u32 {
    v[i]
}
