// Seeded mini-workspace: one violation per rule. `lnpram-lint --root`
// pointed here must exit nonzero and report every rule below.
use std::collections::HashMap;
use std::time::Instant;

pub fn step(queues: &mut HashMap<u32, Vec<u32>>) -> usize {
    let _t = Instant::now();
    let _r = rand::thread_rng();
    let head = queues.get(&0).unwrap();
    unsafe { std::hint::unreachable_unchecked() }
}
