//! The lockstep sharded engine.
//!
//! [`ShardedEngine`] splits one network into `k` shards (a
//! [`ShardPlan`] from a [`Partitioner`]) and simulates it with one
//! [`Engine`] per shard, each owning the out-link queues of its nodes
//! over the induced sub-CSR (remote link heads become out-degree-0
//! ghost nodes). One **global step** is:
//!
//! 1. **Transmit (sharded)** — every shard engine runs its transmit
//!    phase independently; with `threads > 1` the shards fan out over a
//!    persistent [`WorkerPool`], one shard per worker. Each shard then
//!    publishes its extractions in its boundary **mailbox**: the
//!    engine's arrivals buffer, handed over zero-copy via
//!    [`Engine::swap_arrivals`]. Mailbox capacity is bounded by the
//!    shard's link count — at most one packet per link per step — and
//!    preallocated.
//! 2. **Exchange + process (central)** — the coordinator merges the `k`
//!    mailboxes by **global link id** into the exact arrival order of
//!    the serial engine. Contiguous partitions ([`crate::LevelCut`],
//!    [`crate::RowBlock`]) own disjoint ascending link-id ranges, so no
//!    merge is materialized at all: the process phase groups arrivals
//!    **in place** through packed `(shard, index)` coordinates into the
//!    mailboxes; only non-contiguous plans pay a k-way cursor merge. It
//!    then drives the [`Protocol`] over destination nodes in ascending
//!    id — precisely the serial engine's process phase. Protocol sends
//!    are enqueued straight into the owning shard.
//!
//! # Determinism contract
//!
//! `ShardedEngine::run` is **bit-identical** to a single `Engine::run`
//! over the whole network — same `RunOutcome` (steps, deliveries,
//! latency histogram, queue high-water, queued-packet-steps, link
//! loads), for any `Protocol`, any `Discipline`, any partition, and any
//! `k`. This holds because the protocol is driven centrally in exactly
//! the serial callback order: protocols keep cross-node state (Ranade
//! combining tables, module batches) with **no adaptation** — node ids
//! seen by the protocol are global ids. The property tests in this
//! crate and `tests/sharded_equivalence.rs` pin the contract on random
//! butterflies, stars and meshes.
//!
//! # Cost model
//!
//! Sharding pays a coordination tax — the lockstep rendezvous (when the
//! pool is on) and the mailbox exchange — to buy transmit-phase
//! parallelism and per-shard cache locality. The serial-coordinator
//! path uses no atomics (`Mutex::get_mut`) and contiguous partitions
//! exchange zero-copy (packets stay in the mailboxes until batch
//! assembly — the same single copy the serial engine pays), so on one
//! core the tax is a few percent; with multiple cores the transmit
//! phase scales with `k`. See the README's sharding section for when
//! sharding wins and loses.

use crate::partition::{Partitioner, ShardPlan};
use lnpram_simnet::fault::{FaultError, FaultPlan, FaultSchedule};
use lnpram_simnet::trace::{NoopSink, Phase, StepSample, TraceSink};
use lnpram_simnet::worker::WorkerPool;
use lnpram_simnet::{
    Engine, InvariantViolation, Metrics, Outbox, Packet, Protocol, RunOutcome, SimConfig,
};
use lnpram_topology::Network;
use std::sync::Mutex;

/// Chain terminator for the arrival-grouping scratch.
const NIL: u32 = u32::MAX;

/// Packed arrival coordinates: shard id in the top 4 bits, index into
/// that shard's mailbox in the low 28 (shard id [`MERGED`] = index into
/// the k-way merge output instead). Lets the process phase fetch
/// packets straight out of the mailboxes — no translation or
/// concatenation pass for contiguous partitions.
const COORD_BITS: u32 = 28;
const COORD_MASK: u32 = (1 << COORD_BITS) - 1;
/// Pseudo-shard id addressing the `merged` buffer (non-contiguous plans).
const MERGED: u32 = 15;
/// Shard-count cap imposed by the packed coordinates.
pub const MAX_SHARDS: usize = 15;

/// Minimum total in-flight packets (per shard) before the transmit
/// phase is worth a worker-pool rendezvous; below this the shards are
/// stepped inline on the coordinator thread (same results either way).
const PARALLEL_MIN_PER_SHARD: usize = 64;

/// The induced sub-network of one shard in flat CSR form: its owned
/// nodes keep their global port order; links whose head lives in
/// another shard point at out-degree-0 ghost nodes appended after the
/// owned nodes (ghost targets are never enqueued on — they only keep
/// the shard engine's CSR well-formed).
struct SubNet {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    label: String,
}

impl Network for SubNet {
    fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
    fn out_degree(&self, node: usize) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }
    fn neighbor(&self, node: usize, port: usize) -> usize {
        self.targets[self.offsets[node] as usize + port] as usize
    }
    fn name(&self) -> String {
        self.label.clone()
    }
}

/// One shard: its engine over the induced sub-CSR plus the boundary
/// mailbox buffer. The local → global link tables live on the
/// coordinator (outside the mutex) so the exchange and process phases
/// read them without touching shard state.
struct Shard {
    engine: Engine,
    /// Boundary mailbox: this step's extractions as `(local link id,
    /// packet)`, ascending — the engine's arrivals buffer, swapped out
    /// zero-copy. Bounded by the shard's link count.
    buf: Vec<(u32, Packet)>,
}

impl Shard {
    /// Transmit phase of one global step: extract packets from this
    /// shard's active links and publish them in the mailbox. Runs on a
    /// pool worker in parallel mode.
    fn transmit(&mut self) {
        self.engine.step_transmit();
        self.engine.swap_arrivals(&mut self.buf);
    }
}

/// A partitioned simulator: `k` shard engines stepped in lockstep with
/// deterministic boundary exchange. Drop-in equivalent of [`Engine`]
/// for the inject/run/reset workflow (see the module docs for the
/// determinism contract).
pub struct ShardedEngine {
    cfg: SimConfig,
    k: usize,
    num_nodes: usize,
    num_links: usize,
    /// Global node → packed owner: shard id in the top 4 bits, local
    /// node id within that shard in the low 28 (one cache line touched
    /// per ownership lookup instead of two).
    node_owner: Vec<u32>,
    /// Global link id → global head node (the coordinator's view of the
    /// whole CSR, used to group merged arrivals by destination).
    link_head: Vec<u32>,
    /// Global CSR offsets (links of node `v` are
    /// `link_offset[v] .. link_offset[v+1]`) — with `link_head` this is
    /// the full global CSR, so fault schedules validate and bind here
    /// exactly as they do on a serial [`Engine`].
    link_offset: Vec<u32>,
    /// Global link id → packed owner (shard id in the top 4 bits, local
    /// link id in the low 28). Built lazily on the first fault-surface
    /// call; empty until then.
    link_owner: Vec<u32>,
    /// Installed fault schedule over the **global** CSR; per-link
    /// blocked updates are forwarded to the owning shard at the start
    /// of each transmit phase, so every shard observes the same link
    /// state a serial engine would. Cleared by reset.
    faults: Option<Box<FaultSchedule>>,
    /// Global transmit phases since the last reset (the step the fault
    /// schedule is keyed on, mirroring the serial engine's clock).
    clock: u32,
    /// Per shard: local link id → global link id (strictly increasing).
    shard_link_global: Vec<Vec<u32>>,
    /// Per shard: local link id → global head node.
    shard_link_head: Vec<Vec<u32>>,
    /// Shard ids are ascending node ranges (contiguous partition), so
    /// link-id ranges are disjoint and the mailbox merge is one
    /// concatenation pass.
    ordered: bool,
    shards: Vec<Mutex<Shard>>,
    workers: Option<WorkerPool>,
    pending: Vec<(usize, Packet)>,
    /// Packets currently queued across all shards.
    in_flight: usize,
    metrics: Metrics,
    // --- reusable per-step scratch (mirrors `Engine`'s process phase) ---
    /// K-way merge output `(global link id, packet)` — only used for
    /// non-contiguous plans; contiguous ones group straight off the
    /// mailboxes.
    merged: Vec<(u32, Packet)>,
    /// Mailbox cursors of the k-way merge (non-contiguous plans only).
    cursors: Vec<usize>,
    /// Per-arrival chain entries `(packed coordinate, next)` bucketed by
    /// destination node — the sharded analogue of the serial engine's
    /// `arrival_next` chains, pointing into the mailboxes in place.
    chain: Vec<(u32, u32)>,
    node_head: Vec<u32>,
    node_tail: Vec<u32>,
    touched: Vec<u32>,
    batch: Vec<Packet>,
}

impl ShardedEngine {
    /// Partition `net` into `cfg.shards` shards with `part` — clamped
    /// to `1..=`[`MAX_SHARDS`] (the packed-coordinate cap) **and** to
    /// the node count, so `cfg.shards > n` on a tiny network yields one
    /// single-node shard per node instead of empty shards (degenerate
    /// `GreedyEdgeCut` / `LevelCut` bands) — and build one engine per
    /// shard. The per-shard engines always run their own transmit
    /// serially (shard-level fan-out replaces link-level fan-out);
    /// `cfg.threads > 1` enables the worker pool across shards.
    /// Explicit plans via [`ShardedEngine::with_plan`] are not clamped
    /// (empty shards in an explicit plan are legal and simulated
    /// correctly) and assert the cap instead.
    pub fn new<N, P>(net: &N, cfg: SimConfig, part: &P) -> Self
    where
        N: Network + ?Sized,
        P: Partitioner + ?Sized,
    {
        let k = cfg.shards.clamp(1, MAX_SHARDS).min(net.num_nodes().max(1));
        let plan = part.partition(net, k);
        Self::with_plan(net, cfg, plan)
    }

    /// Build from an explicit [`ShardPlan`] (must cover `net` exactly).
    pub fn with_plan<N: Network + ?Sized>(net: &N, cfg: SimConfig, plan: ShardPlan) -> Self {
        let n = net.num_nodes();
        assert_eq!(plan.num_nodes(), n, "plan does not cover the network");
        let k = plan.shards();
        assert!(
            k <= MAX_SHARDS,
            "shard count {k} exceeds MAX_SHARDS ({MAX_SHARDS}) — the packed \
             arrival coordinates reserve 4 bits for the shard id"
        );
        // Global CSR: link-id offsets and head nodes of every link.
        let mut link_offset = Vec::with_capacity(n + 1);
        link_offset.push(0u32);
        let mut link_head = Vec::new();
        for v in 0..n {
            for p in 0..net.out_degree(v) {
                link_head.push(net.neighbor(v, p) as u32);
            }
            link_offset.push(link_head.len() as u32);
        }
        let num_links = link_head.len();
        // Local node ids: dense per shard, ascending in global id.
        let mut node_local = vec![0u32; n];
        let mut owned_count = vec![0u32; k];
        let mut shard_links = vec![0u32; k];
        for v in 0..n {
            let s = plan.shard_of(v);
            node_local[v] = owned_count[s];
            owned_count[s] += 1;
            shard_links[s] += link_offset[v + 1] - link_offset[v];
        }
        // Hard caps, checked once at construction: the packed coordinates
        // reserve 28 bits for in-shard indices, so silent aliasing in
        // release builds is impossible past them.
        for s in 0..k {
            assert!(
                owned_count[s] <= COORD_MASK && shard_links[s] <= COORD_MASK,
                "shard {s} exceeds 2^28 nodes or links — the packed arrival \
                 coordinates cannot address it"
            );
        }
        let ordered = plan.node_shard().windows(2).all(|w| w[0] <= w[1]);
        let node_owner: Vec<u32> = (0..n)
            .map(|v| ((plan.shard_of(v) as u32) << COORD_BITS) | node_local[v])
            .collect();
        let shard_cfg = SimConfig {
            discipline: cfg.discipline,
            max_steps: u32::MAX,
            parallel_threshold: usize::MAX,
            threads: 1,
            record_link_loads: false,
            shards: 0,
        };
        let mut shards = Vec::with_capacity(k);
        let mut shard_link_global = Vec::with_capacity(k);
        let mut shard_link_head = Vec::with_capacity(k);
        for s in 0..k {
            let links = shard_links[s] as usize;
            let mut offsets = Vec::with_capacity(owned_count[s] as usize + 1);
            offsets.push(0u32);
            let mut targets = Vec::with_capacity(links);
            let mut link_global = Vec::with_capacity(links);
            let mut lheads = Vec::with_capacity(links);
            // Ghost ids for remote heads, assigned in first-reference
            // order (NIL = not yet seen).
            let mut ghost_of = vec![NIL; n];
            let mut ghosts = 0u32;
            for v in (0..n).filter(|&v| plan.shard_of(v) == s) {
                for p in 0..net.out_degree(v) {
                    let w = net.neighbor(v, p);
                    let target = if plan.shard_of(w) == s {
                        node_local[w]
                    } else if ghost_of[w] != NIL {
                        ghost_of[w]
                    } else {
                        ghosts += 1;
                        ghost_of[w] = owned_count[s] + ghosts - 1;
                        ghost_of[w]
                    };
                    targets.push(target);
                    link_global.push(link_offset[v] + p as u32);
                    lheads.push(w as u32);
                }
                offsets.push(targets.len() as u32);
            }
            offsets.extend(std::iter::repeat_n(targets.len() as u32, ghosts as usize));
            let sub = SubNet {
                offsets,
                targets,
                label: format!("{}/shard{}of{}", net.name(), s, k),
            };
            shards.push(Mutex::new(Shard {
                engine: Engine::new(&sub, shard_cfg.clone()),
                buf: Vec::with_capacity(links),
            }));
            shard_link_global.push(link_global);
            shard_link_head.push(lheads);
        }
        ShardedEngine {
            cfg,
            k,
            num_nodes: n,
            num_links,
            node_owner,
            link_head,
            link_offset,
            link_owner: Vec::new(),
            faults: None,
            clock: 0,
            shard_link_global,
            shard_link_head,
            ordered,
            shards,
            workers: None,
            pending: Vec::new(),
            in_flight: 0,
            metrics: Metrics::default(),
            merged: Vec::new(),
            cursors: vec![0; k],
            chain: Vec::new(),
            node_head: vec![NIL; n],
            node_tail: vec![NIL; n],
            touched: Vec::new(),
            batch: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.k
    }

    /// Number of nodes in the simulated network.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total number of directed links, in **global** link-id order
    /// (mirrors [`Engine::num_links`]).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Build the global-link → (shard, local link) inverse of
    /// `shard_link_global` on first use. Every link is owned by exactly
    /// one shard (the shard of its tail node), so the map is total.
    fn ensure_link_owner(&mut self) {
        if !self.link_owner.is_empty() || self.num_links == 0 {
            return;
        }
        let mut owner = vec![NIL; self.num_links];
        for (s, globals) in self.shard_link_global.iter().enumerate() {
            for (local, &global) in globals.iter().enumerate() {
                owner[global as usize] = ((s as u32) << COORD_BITS) | local as u32;
            }
        }
        self.link_owner = owner;
    }

    /// Forward a blocked-state update for a global link to the shard
    /// engine that owns it. `link_owner` must be built.
    fn apply_link_blocked(
        link_owner: &[u32],
        shards: &mut [Mutex<Shard>],
        link: usize,
        blocked: bool,
    ) {
        let packed = link_owner[link];
        let s = (packed >> COORD_BITS) as usize;
        let local = (packed & COORD_MASK) as usize;
        shards[s]
            .get_mut()
            .expect("shard mutex")
            .engine
            .set_link_blocked(local, blocked);
    }

    /// Mark the link `(node, port)` as failed: packets queue on it but
    /// never traverse — the sharded mirror of [`Engine::block_link`]
    /// (the update lands on whichever shard owns the link).
    pub fn block_link(&mut self, node: usize, port: usize) {
        let link = self.link_offset[node] as usize + port;
        assert!(
            link < self.link_offset[node + 1] as usize,
            "block_link on invalid port {port} of node {node}"
        );
        self.ensure_link_owner();
        Self::apply_link_blocked(&self.link_owner, &mut self.shards, link, true);
    }

    /// Install a deterministic fault schedule, validated against the
    /// **global** topology — the sharded mirror of
    /// [`Engine::set_fault_plan`]. The schedule is advanced by the
    /// coordinator at the start of every global transmit phase and its
    /// per-link updates are forwarded to the owning shards, so for any
    /// plan the sharded run observes exactly the link state of the
    /// serial run at every step. `reset` clears the plan.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        let sched = FaultSchedule::build(plan, &self.link_offset, &self.link_head)?;
        self.ensure_link_owner();
        self.faults = Some(Box::new(sched));
        Ok(())
    }

    /// Override the global step budget (mirrors [`Engine::set_max_steps`]).
    pub fn set_max_steps(&mut self, max_steps: u32) {
        self.cfg.max_steps = max_steps;
    }

    /// Exclusive access to shard `s` — no lock traffic; the coordinator
    /// holds `&mut self` everywhere outside the pool job.
    fn shard_mut(&mut self, s: usize) -> &mut Shard {
        self.shards[s].get_mut().expect("shard mutex")
    }

    /// Restore the just-built state, keeping every allocation (shard
    /// arenas, mailboxes, scratch, worker pool) warm — the sharded
    /// counterpart of [`Engine::reset`].
    pub fn reset(&mut self) {
        for s in 0..self.k {
            self.shard_mut(s).engine.reset();
        }
        self.pending.clear();
        self.in_flight = 0;
        self.metrics = Metrics::default();
        self.faults = None;
        self.clock = 0;
    }

    /// Schedule `pkt` for injection at `node` before the first step.
    pub fn inject(&mut self, node: usize, pkt: Packet) {
        debug_assert!(node < self.num_nodes);
        self.pending.push((node, pkt));
    }

    /// Packets still queued across all shards.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Packets delivered since the last reset — live mid-run (see
    /// [`Engine::delivered`]).
    pub fn delivered(&self) -> usize {
        self.metrics.delivered
    }

    /// Packets the last transmit phase moved (see
    /// [`Engine::arrivals_len`]; mailboxes stay intact until the next
    /// transmit).
    pub fn arrivals_len(&self) -> usize {
        if self.ordered {
            self.shards
                .iter()
                .map(|s| s.lock().expect("shard mutex").buf.len())
                .sum()
        } else {
            self.merged.len()
        }
    }

    /// Per-link traversal counts in **global** link-id order, assembled
    /// from the shard engines (mirrors [`Engine::link_loads`]).
    pub fn link_loads(&self) -> Vec<u32> {
        let mut loads = vec![0u32; self.num_links];
        for (s, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("shard mutex");
            let shard_loads = shard.engine.link_loads();
            for (local, &global) in self.shard_link_global[s].iter().enumerate() {
                loads[global as usize] = shard_loads[local];
            }
        }
        loads
    }

    /// Drain every shard queue, returning the stranded packets in global
    /// link order (links ascending, packets of one link in arrival
    /// order) — exactly the order [`Engine::drain_all`] produces.
    pub fn drain_all(&mut self) -> Vec<Packet> {
        let mut tagged: Vec<(u32, usize, Packet)> = Vec::new();
        for s in 0..self.k {
            let drained = self.shard_mut(s).engine.drain_all_tagged();
            for (i, (local, pkt)) in drained.into_iter().enumerate() {
                tagged.push((self.shard_link_global[s][local as usize], i, pkt));
            }
        }
        // Links are owned by exactly one shard, so sorting by (global
        // link, within-shard position) reproduces the serial drain order.
        tagged.sort_unstable_by_key(|&(link, i, _)| (link, i));
        self.in_flight = 0;
        tagged.into_iter().map(|(_, _, pkt)| pkt).collect()
    }

    /// Run the protocol until all queues drain or `max_steps` elapse —
    /// the lockstep counterpart of [`Engine::run`], bit-identical to it
    /// on the whole network.
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunOutcome {
        self.run_traced(proto, &mut NoopSink)
    }

    /// [`ShardedEngine::run`] reporting to a [`TraceSink`] — phase
    /// windows, per-shard transmit splits and boundary-crossing counts,
    /// fault applications and per-step samples. With [`NoopSink`] this
    /// monomorphizes to exactly the untraced loop; the observed run is
    /// bit-identical either way (sinks cannot mutate the engines).
    pub fn run_traced<P: Protocol, S: TraceSink + ?Sized>(
        &mut self,
        proto: &mut P,
        sink: &mut S,
    ) -> RunOutcome {
        let mut out = Outbox::default();
        let before = self.metrics.delivered;

        // Step 0: process injections in order (drained in place).
        sink.on_phase_start(Phase::Process);
        self.process_pending(proto, 0, &mut out);
        sink.on_phase_end(Phase::Process);
        self.step_finish();
        proto.on_step_end(0);
        let mut last_delivered = self.metrics.delivered;
        if sink.enabled() {
            sink.on_step_end(&StepSample {
                step: 0,
                in_flight: self.in_flight,
                arrivals: 0,
                deliveries: last_delivered - before,
                max_queue_len: self.max_queue_len(),
                backlog: 0,
            });
        }

        let mut step: u32 = 0;
        while self.in_flight > 0 {
            if step >= self.cfg.max_steps {
                return RunOutcome {
                    metrics: self.finish_metrics(step),
                    completed: false,
                };
            }
            step += 1;
            sink.on_step_begin(step);
            self.step_transmit_traced(sink);
            sink.on_phase_start(Phase::Process);
            self.process_arrivals(proto, step, &mut out);
            sink.on_phase_end(Phase::Process);
            proto.on_step_end(step);
            self.step_finish();
            self.note_queued_step();
            if sink.enabled() {
                let arrivals = if self.ordered {
                    (0..self.k).map(|s| self.shard_mut(s).buf.len()).sum()
                } else {
                    self.merged.len()
                };
                let delivered = self.metrics.delivered;
                sink.on_step_end(&StepSample {
                    step,
                    in_flight: self.in_flight,
                    arrivals,
                    deliveries: delivered - last_delivered,
                    max_queue_len: self.max_queue_len(),
                    backlog: 0,
                });
                last_delivered = delivered;
            }
        }

        RunOutcome {
            metrics: self.finish_metrics(step),
            completed: true,
        }
    }

    /// Feed every pending injection to the protocol at `step`, stamping
    /// each packet's `injected_at` with the admission step — the sharded
    /// mirror of [`Engine::process_pending`], callback-for-callback, so
    /// mid-run admission is bit-identical across serial and sharded
    /// engines.
    pub fn process_pending<P: Protocol>(&mut self, proto: &mut P, step: u32, out: &mut Outbox) {
        let pending = std::mem::take(&mut self.pending);
        for &(node, pkt) in &pending {
            let mut pkt = pkt;
            pkt.injected_at = step;
            proto.on_packet(node, pkt, step, out);
            self.apply_outbox(node, out, step);
        }
        self.pending = pending;
        self.pending.clear();
    }

    /// Global transmit phase: every shard extracts from its own links,
    /// then (non-contiguous plans only) the mailboxes are merged into
    /// the serial arrival order. The sharded mirror of
    /// [`Engine::step_transmit`]; arrivals are consumed by
    /// [`ShardedEngine::process_arrivals`].
    pub fn step_transmit(&mut self) {
        self.step_transmit_traced(&mut NoopSink);
    }

    /// [`ShardedEngine::step_transmit`] reporting fault applications,
    /// the transmit/exchange phase windows and per-shard splits to a
    /// [`TraceSink`] (compiles to the untraced phase under [`NoopSink`]).
    pub fn step_transmit_traced<S: TraceSink + ?Sized>(&mut self, sink: &mut S) {
        self.clock += 1;
        if self.faults.is_some() {
            let Self {
                faults,
                link_owner,
                shards,
                clock,
                ..
            } = self;
            let sched = faults.as_mut().expect("checked above");
            let clock = *clock;
            if sink.enabled() {
                sched.advance(clock, |link, blocked| {
                    Self::apply_link_blocked(link_owner, shards, link, blocked);
                    sink.on_fault(clock, link, blocked);
                });
            } else {
                sched.advance(clock, |link, blocked| {
                    Self::apply_link_blocked(link_owner, shards, link, blocked);
                });
            }
        }
        sink.on_phase_start(Phase::Transmit);
        self.transmit_all(sink);
        sink.on_phase_end(Phase::Transmit);
        if !self.ordered {
            sink.on_phase_start(Phase::Exchange);
            self.merge_mailboxes();
            sink.on_phase_end(Phase::Exchange);
        }
    }

    /// End-of-step occupancy accounting (mirrors
    /// [`Engine::note_queued_step`]).
    pub fn note_queued_step(&mut self) {
        self.metrics.queued_packet_steps += self.in_flight as u64;
    }

    /// Take back the not-yet-processed injections (mirrors
    /// [`Engine::take_pending`]).
    pub fn take_pending(&mut self) -> Vec<(usize, Packet)> {
        std::mem::take(&mut self.pending)
    }

    /// Largest current occupancy over all link queues of all shards
    /// (mirrors [`Engine::max_queue_len`]; identical to the serial value
    /// because shard queues partition the global queues).
    pub fn max_queue_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard mutex").engine.max_queue_len())
            .max()
            .unwrap_or(0)
    }

    /// Transmit phase across all shards — over the worker pool (one
    /// shard per worker) when configured and worthwhile, inline
    /// otherwise. Both paths produce identical mailboxes: shards do not
    /// interact during transmit. Per-shard phase windows and
    /// boundary-crossing counts are reported only on the inline path
    /// (sinks are not `Sync`); the pooled path still gets the
    /// whole-phase window from the caller.
    fn transmit_all<S: TraceSink + ?Sized>(&mut self, sink: &mut S) {
        let parallel =
            self.cfg.threads > 1 && self.k > 1 && self.in_flight >= PARALLEL_MIN_PER_SHARD * self.k;
        if parallel {
            let pool = self
                .workers
                .get_or_insert_with(|| WorkerPool::new(self.k.min(self.cfg.threads)));
            let shards = &self.shards;
            let workers = pool.threads();
            pool.run(&move |w| {
                // Round-robin shards over workers (k == workers in the
                // common one-shard-per-worker setup).
                let mut s = w;
                while s < shards.len() {
                    shards[s].lock().expect("shard mutex").transmit();
                    s += workers;
                }
            });
        } else if sink.enabled() {
            for s in 0..self.k {
                sink.on_shard_phase_start(s, Phase::Transmit);
                self.shard_mut(s).transmit();
                sink.on_shard_phase_end(s, Phase::Transmit);
                // Boundary-crossing volume: mailbox packets whose head
                // node is owned by another shard (the traffic the
                // exchange actually moves across the partition).
                let Self {
                    shards,
                    shard_link_head,
                    node_owner,
                    ..
                } = self;
                let heads = &shard_link_head[s];
                let crossing = shards[s]
                    .get_mut()
                    .expect("shard mutex")
                    .buf
                    .iter()
                    .filter(|&&(local, _)| {
                        (node_owner[heads[local as usize] as usize] >> COORD_BITS) as usize != s
                    })
                    .count();
                sink.on_boundary(s, crossing);
            }
        } else {
            for s in 0..self.k {
                self.shard_mut(s).transmit();
            }
        }
    }

    /// Deterministic boundary exchange for **non-contiguous** plans:
    /// k-way cursor merge of the shard mailboxes by global link id into
    /// `merged` — the serial engine's exact arrival order. Contiguous
    /// plans skip this entirely: their mailboxes already concatenate in
    /// global order, so [`ShardedEngine::process_arrivals`] groups
    /// straight off them.
    fn merge_mailboxes(&mut self) {
        self.merged.clear();
        self.cursors.fill(0);
        let Self {
            shards,
            merged,
            cursors,
            shard_link_global,
            ..
        } = self;
        loop {
            let mut best_link = u32::MAX;
            let mut best_s = usize::MAX;
            for (s, shard) in shards.iter_mut().enumerate() {
                let buf = &shard.get_mut().expect("shard mutex").buf;
                if let Some(&(local, _)) = buf.get(cursors[s]) {
                    let link = shard_link_global[s][local as usize];
                    if link < best_link {
                        best_link = link;
                        best_s = s;
                    }
                }
            }
            if best_s == usize::MAX {
                break;
            }
            let (_, pkt) = shards[best_s].get_mut().expect("shard mutex").buf[cursors[best_s]];
            cursors[best_s] += 1;
            merged.push((best_link, pkt));
        }
    }

    /// Process phase: group this step's arrivals by destination node and
    /// drive the protocol over nodes in ascending id — the serial
    /// engine's exact callback sequence. Arrivals are read **in place**:
    /// the bucket chains store packed `(shard, index)` coordinates into
    /// the mailboxes (or into `merged` for non-contiguous plans), so the
    /// contiguous path moves no packet until batch assembly — the same
    /// single copy the serial engine pays.
    pub fn process_arrivals<P: Protocol>(&mut self, proto: &mut P, step: u32, out: &mut Outbox) {
        // Grouping pass over plain field borrows (no self methods).
        let mut arrivals = 0usize;
        {
            let Self {
                shards,
                merged,
                ordered,
                link_head,
                shard_link_head,
                chain,
                node_head,
                node_tail,
                touched,
                ..
            } = self;
            chain.clear();
            let mut bucket = |node: usize, packed: u32, chain: &mut Vec<(u32, u32)>| {
                let e = chain.len() as u32;
                chain.push((packed, NIL));
                if node_head[node] == NIL {
                    node_head[node] = e;
                    touched.push(node as u32);
                } else {
                    chain[node_tail[node] as usize].1 = e;
                }
                node_tail[node] = e;
            };
            if *ordered {
                // Shard mailboxes concatenate in global link order.
                for (s, shard) in shards.iter_mut().enumerate() {
                    let heads = &shard_link_head[s];
                    let buf = &shard.get_mut().expect("shard mutex").buf;
                    debug_assert!(buf.len() <= COORD_MASK as usize);
                    for (idx, &(local, _)) in buf.iter().enumerate() {
                        bucket(
                            heads[local as usize] as usize,
                            ((s as u32) << COORD_BITS) | idx as u32,
                            chain,
                        );
                    }
                    arrivals += buf.len();
                }
            } else {
                debug_assert!(merged.len() <= COORD_MASK as usize);
                for (idx, &(link, _)) in merged.iter().enumerate() {
                    bucket(
                        link_head[link as usize] as usize,
                        (MERGED << COORD_BITS) | idx as u32,
                        chain,
                    );
                }
                arrivals = merged.len();
            }
            touched.sort_unstable();
        }
        self.in_flight -= arrivals;
        for t in 0..self.touched.len() {
            let node = self.touched[t] as usize;
            self.batch.clear();
            let mut e = self.node_head[node];
            while e != NIL {
                let (packed, next) = self.chain[e as usize];
                let s = packed >> COORD_BITS;
                let idx = (packed & COORD_MASK) as usize;
                let pkt = if s == MERGED {
                    self.merged[idx].1
                } else {
                    self.shards[s as usize].get_mut().expect("shard mutex").buf[idx].1
                };
                self.batch.push(pkt);
                e = next;
            }
            self.node_head[node] = NIL;
            let batch = std::mem::take(&mut self.batch);
            proto.on_arrivals(node, &batch, step, out);
            self.batch = batch;
            self.apply_outbox(node, out, step);
        }
        self.touched.clear();
    }

    /// Apply one callback's outbox: route every send into the shard
    /// owning `node` (sends always leave on the processing node's own
    /// ports) and record deliveries centrally.
    fn apply_outbox(&mut self, node: usize, out: &mut Outbox, step: u32) {
        if !out.sends().is_empty() {
            let owner = self.node_owner[node];
            let local = (owner & COORD_MASK) as usize;
            let shard = self.shards[(owner >> COORD_BITS) as usize]
                .get_mut()
                .expect("shard mutex");
            for &(port, pkt) in out.sends() {
                shard.engine.enqueue_direct(local, port, pkt);
            }
            self.in_flight += out.sends().len();
        }
        for pkt in out.delivered() {
            self.metrics.on_delivery(step, pkt.injected_at);
        }
        out.clear();
    }

    /// Close the step on every shard (restore active-link order) —
    /// mirrors [`Engine::step_finish`].
    pub fn step_finish(&mut self) {
        for s in 0..self.k {
            self.shard_mut(s).engine.step_finish();
        }
    }

    /// Verify the coordinator-level invariants, plus every shard
    /// engine's own [`Engine::check_invariants`]. Intended at global
    /// step boundaries (after [`ShardedEngine::step_finish`]); the
    /// shard property tests call it directly, and
    /// `LNPRAM_CHECK_INVARIANTS=1` covers the per-shard half
    /// automatically on every step.
    ///
    /// Checked, beyond the per-shard engine state:
    /// * packet conservation across the partition: the coordinator's
    ///   `in_flight` == the sum of every shard engine's `in_flight`
    ///   (a mailbox-exchange bug shows up here as a leak or a dupe);
    /// * link-table accounting: each shard's local → global link table
    ///   is strictly increasing, the tables together cover every global
    ///   link exactly once, and the mirrored ghost-head table agrees
    ///   with the global CSR (`shard_link_head[s][l] ==
    ///   link_head[shard_link_global[s][l]]`);
    /// * for contiguous (`ordered`) plans, shard link ranges are
    ///   disjoint and ascending, which is what licenses the
    ///   concatenation-only mailbox merge;
    /// * node accounting: every global node is owned by exactly one
    ///   shard, at a local id within that shard's engine.
    pub fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        let fail = |what: String| Err(InvariantViolation { what });

        let mut shard_in_flight = 0usize;
        for s in 0..self.k {
            let eng = &self.shard_mut(s).engine;
            shard_in_flight += eng.in_flight();
            if let Err(v) = eng.check_invariants() {
                return fail(format!("shard {s}: {v}"));
            }
        }
        if shard_in_flight != self.in_flight {
            return fail(format!(
                "cross-shard packet conservation: coordinator in_flight {} != {} summed over \
                 shard engines",
                self.in_flight, shard_in_flight
            ));
        }

        let mut owner_of_link = vec![NIL; self.num_links];
        for s in 0..self.k {
            let globals = &self.shard_link_global[s];
            let heads = &self.shard_link_head[s];
            if globals.len() != heads.len() {
                return fail(format!(
                    "shard {s}: link table length {} != head table length {}",
                    globals.len(),
                    heads.len()
                ));
            }
            let mut prev: Option<u32> = None;
            for (local, &global) in globals.iter().enumerate() {
                if global as usize >= self.num_links {
                    return fail(format!(
                        "shard {s} local link {local} maps to out-of-range global link {global}"
                    ));
                }
                if prev.is_some_and(|p| p >= global) {
                    return fail(format!(
                        "shard {s} link table not strictly increasing at local link {local}"
                    ));
                }
                prev = Some(global);
                if owner_of_link[global as usize] != NIL {
                    return fail(format!(
                        "global link {global} claimed by shard {s} and shard {}",
                        owner_of_link[global as usize]
                    ));
                }
                owner_of_link[global as usize] = s as u32;
                if heads[local] != self.link_head[global as usize] {
                    return fail(format!(
                        "shard {s} ghost-head table disagrees with the global CSR at local \
                         link {local}: {} != {}",
                        heads[local], self.link_head[global as usize]
                    ));
                }
            }
        }
        if let Some(orphan) = owner_of_link.iter().position(|&o| o == NIL) {
            return fail(format!("global link {orphan} is owned by no shard"));
        }
        if self.ordered {
            let mut prev_last: Option<u32> = None;
            for s in 0..self.k {
                let globals = &self.shard_link_global[s];
                let (Some(&first), Some(&last)) = (globals.first(), globals.last()) else {
                    continue;
                };
                if prev_last.is_some_and(|p| p >= first) {
                    return fail(format!(
                        "ordered plan but shard {s} link range is not after its predecessor's"
                    ));
                }
                prev_last = Some(last);
            }
        }

        let mut owned = vec![0usize; self.k];
        for (node, &packed) in self.node_owner.iter().enumerate() {
            let s = (packed >> COORD_BITS) as usize;
            let local = (packed & COORD_MASK) as usize;
            if s >= self.k {
                return fail(format!("node {node} is owned by nonexistent shard {s}"));
            }
            owned[s] = owned[s].max(local + 1);
        }
        for (s, &hi) in owned.iter().enumerate() {
            let shard_nodes = self.shard_mut(s).engine.num_nodes();
            if hi > shard_nodes {
                return fail(format!(
                    "shard {s} owner table points at local node {} but its engine (ghosts \
                     included) has only {shard_nodes} nodes",
                    hi - 1
                ));
            }
        }
        Ok(())
    }

    /// Finalise and move the accumulated metrics out, assembling the
    /// cross-shard aggregates exactly like the serial engine does
    /// (mirrors [`Engine::finish_metrics`]).
    pub fn finish_metrics(&mut self, steps: u32) -> Metrics {
        self.metrics.steps = steps;
        self.metrics.max_queue = (0..self.k)
            .map(|s| self.shard_mut(s).engine.queue_high_water())
            .max()
            .unwrap_or(0);
        if self.cfg.record_link_loads {
            self.metrics.link_loads = self.link_loads();
        }
        std::mem::take(&mut self.metrics)
    }
}
