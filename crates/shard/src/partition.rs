//! Network partitioning: node → shard assignment strategies and cut
//! quality metrics.
//!
//! A [`ShardPlan`] assigns every node of a [`Network`] to one of `k`
//! shards. The shard owning a node owns that node's *out-link queues*;
//! a directed link whose head lives in another shard is a **boundary
//! link** — its packets cross shards through the mailbox exchange in
//! [`crate::ShardedEngine`]. The quality of a plan is therefore the
//! number of boundary (cut) links and the node balance, both reported
//! by [`ShardPlan::cut_stats`].
//!
//! Three strategies cover the repo's topologies:
//!
//! * [`LevelCut`] — contiguous bands of columns for leveled networks
//!   (node id = `column * width + idx`), so cuts fall only between
//!   consecutive columns. On an ℓ-level network a packet crosses at
//!   most `k − 1` boundaries over its whole route.
//! * [`RowBlock`] — contiguous bands of rows for the row-major mesh;
//!   only the vertical links between adjacent bands are cut.
//! * [`GreedyEdgeCut`] — topology-agnostic greedy graph growing:
//!   nodes are visited in BFS order and each joins the non-full shard
//!   holding most of its already-placed neighbors. The fallback for
//!   networks with no exploitable index structure (star graphs,
//!   arbitrary [`Network`] implementations).

use lnpram_topology::Network;

/// A node → shard assignment for one network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    node_shard: Vec<u32>,
    k: usize,
}

impl ShardPlan {
    /// Wrap an explicit assignment. Panics if any entry is `≥ k` or
    /// `k == 0`.
    pub fn new(node_shard: Vec<u32>, k: usize) -> Self {
        assert!(k >= 1, "a plan needs at least one shard");
        assert!(
            node_shard.iter().all(|&s| (s as usize) < k),
            "shard id out of range"
        );
        ShardPlan { node_shard, k }
    }

    /// Balanced contiguous node ranges (no alignment): shard `s` owns
    /// nodes `[s·n/k, (s+1)·n/k)`.
    pub fn contiguous(n: usize, k: usize) -> Self {
        Self::aligned(n, k, 1)
    }

    /// Contiguous ranges whose boundaries fall on multiples of `align`
    /// (the last unit may be shorter when `align ∤ n`). Units are dealt
    /// to shards as evenly as possible while staying contiguous.
    pub fn aligned(n: usize, k: usize, align: usize) -> Self {
        assert!(k >= 1 && align >= 1);
        let units = n.div_ceil(align).max(1);
        let mut node_shard = Vec::with_capacity(n);
        for v in 0..n {
            let unit = v / align;
            node_shard.push((unit * k / units) as u32);
        }
        ShardPlan { node_shard, k }
    }

    /// Number of shards `k`.
    pub fn shards(&self) -> usize {
        self.k
    }

    /// Number of nodes covered by the plan.
    pub fn num_nodes(&self) -> usize {
        self.node_shard.len()
    }

    /// Shard owning `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        self.node_shard[node] as usize
    }

    /// The raw assignment, indexed by node id.
    pub fn node_shard(&self) -> &[u32] {
        &self.node_shard
    }

    /// Nodes per shard (empty shards are legal — `k` may exceed the
    /// node count on tiny networks).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &s in &self.node_shard {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Measure the plan against the network it was built for.
    pub fn cut_stats<N: Network + ?Sized>(&self, net: &N) -> CutStats {
        assert_eq!(self.node_shard.len(), net.num_nodes(), "plan/network size");
        let mut cut_links = 0usize;
        let mut total_links = 0usize;
        for v in 0..net.num_nodes() {
            for p in 0..net.out_degree(v) {
                total_links += 1;
                if self.node_shard[net.neighbor(v, p)] != self.node_shard[v] {
                    cut_links += 1;
                }
            }
        }
        CutStats {
            shards: self.k,
            node_counts: self.shard_sizes(),
            cut_links,
            total_links,
        }
    }
}

/// Cut quality of a [`ShardPlan`]: boundary-link count and node balance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutStats {
    /// Number of shards.
    pub shards: usize,
    /// Nodes per shard.
    pub node_counts: Vec<usize>,
    /// Directed links whose tail and head live in different shards —
    /// each is a mailbox slot in the boundary exchange.
    pub cut_links: usize,
    /// All directed links.
    pub total_links: usize,
}

impl CutStats {
    /// Fraction of links that cross a shard boundary (0 = no exchange
    /// traffic, 1 = every hop crosses).
    pub fn cut_fraction(&self) -> f64 {
        if self.total_links == 0 {
            0.0
        } else {
            self.cut_links as f64 / self.total_links as f64
        }
    }

    /// Node imbalance: largest shard over the ideal `n/k` share
    /// (1.0 = perfectly balanced).
    pub fn balance(&self) -> f64 {
        let n: usize = self.node_counts.iter().sum();
        if n == 0 {
            return 1.0;
        }
        let ideal = n as f64 / self.shards as f64;
        *self.node_counts.iter().max().expect("k >= 1") as f64 / ideal
    }
}

/// A strategy producing a [`ShardPlan`] for a network.
pub trait Partitioner {
    /// Assign every node of `net` to one of `k` shards.
    fn partition<N: Network + ?Sized>(&self, net: &N, k: usize) -> ShardPlan;

    /// Short strategy name for reports.
    fn name(&self) -> String;
}

/// Column-band partitioner for leveled networks: node id is
/// `column * width + idx` (the `LeveledNet` layout), so aligning the cut
/// to multiples of `width` puts every boundary between two consecutive
/// columns — the minimum-surface cut for forward-only traffic.
#[derive(Debug, Clone, Copy)]
pub struct LevelCut {
    width: usize,
}

impl LevelCut {
    /// Partitioner for a leveled network with `width` nodes per column.
    pub fn new(width: usize) -> Self {
        assert!(width >= 1);
        LevelCut { width }
    }
}

impl Partitioner for LevelCut {
    fn partition<N: Network + ?Sized>(&self, net: &N, k: usize) -> ShardPlan {
        ShardPlan::aligned(net.num_nodes(), k, self.width)
    }

    fn name(&self) -> String {
        format!("level-cut(width={})", self.width)
    }
}

/// Row-band partitioner for the row-major mesh: cuts aligned to
/// multiples of `cols` fall between mesh rows, so only the vertical
/// links between adjacent bands are boundary links.
#[derive(Debug, Clone, Copy)]
pub struct RowBlock {
    cols: usize,
}

impl RowBlock {
    /// Partitioner for a mesh with `cols` nodes per row.
    pub fn new(cols: usize) -> Self {
        assert!(cols >= 1);
        RowBlock { cols }
    }
}

impl Partitioner for RowBlock {
    fn partition<N: Network + ?Sized>(&self, net: &N, k: usize) -> ShardPlan {
        ShardPlan::aligned(net.num_nodes(), k, self.cols)
    }

    fn name(&self) -> String {
        format!("row-block(cols={})", self.cols)
    }
}

/// Topology-agnostic greedy edge-cut: visit nodes in BFS order (over the
/// symmetrised adjacency, restarting per component) and put each node in
/// the shard that already holds most of its neighbors, subject to the
/// capacity cap `⌈n/k⌉`. Deterministic: ties break toward the lowest
/// shard id.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyEdgeCut;

impl Partitioner for GreedyEdgeCut {
    fn partition<N: Network + ?Sized>(&self, net: &N, k: usize) -> ShardPlan {
        let n = net.num_nodes();
        if n == 0 {
            return ShardPlan::new(Vec::new(), k.max(1));
        }
        // Symmetrised adjacency in flat CSR form (a neighbor on either
        // side of a directed link counts toward affinity): count
        // degrees, prefix-sum, fill — no per-node Vec allocations.
        let mut deg = vec![0u32; n];
        for v in 0..n {
            for p in 0..net.out_degree(v) {
                let w = net.neighbor(v, p);
                deg[v] += 1;
                if w != v {
                    deg[w] += 1;
                }
            }
        }
        let mut start = vec![0u32; n + 1];
        for v in 0..n {
            start[v + 1] = start[v] + deg[v];
        }
        let mut flat = vec![0u32; start[n] as usize];
        let mut cursor = start.clone();
        for v in 0..n {
            for p in 0..net.out_degree(v) {
                let w = net.neighbor(v, p);
                flat[cursor[v] as usize] = w as u32;
                cursor[v] += 1;
                if w != v {
                    flat[cursor[w] as usize] = v as u32;
                    cursor[w] += 1;
                }
            }
        }
        let adj = |v: usize| &flat[start[v] as usize..start[v + 1] as usize];
        // BFS visit order, restarting at the lowest unvisited node so
        // disconnected networks are still fully covered.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            queue.push_back(start as u32);
            while let Some(v) = queue.pop_front() {
                order.push(v as usize);
                for &w in adj(v as usize) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        let cap = n.div_ceil(k);
        let unassigned = u32::MAX;
        let mut node_shard = vec![unassigned; n];
        let mut sizes = vec![0usize; k];
        let mut affinity = vec![0usize; k];
        for &v in &order {
            affinity.fill(0);
            for &w in adj(v) {
                let s = node_shard[w as usize];
                if s != unassigned {
                    affinity[s as usize] += 1;
                }
            }
            let mut best = usize::MAX;
            for (s, &score) in affinity.iter().enumerate() {
                if sizes[s] >= cap {
                    continue;
                }
                if best == usize::MAX || score > affinity[best] {
                    best = s;
                }
            }
            debug_assert_ne!(best, usize::MAX, "capacity k*ceil(n/k) >= n");
            node_shard[v] = best as u32;
            sizes[best] += 1;
        }
        ShardPlan::new(node_shard, k)
    }

    fn name(&self) -> String {
        "greedy-edge-cut".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnpram_topology::graph::ExplicitNetwork;
    use lnpram_topology::leveled::{LeveledNet, RadixButterfly};
    use lnpram_topology::{Mesh, StarGraph};

    #[test]
    fn aligned_blocks_are_contiguous_and_balanced() {
        let plan = ShardPlan::aligned(40, 4, 4); // 10 units of 4 nodes
        assert_eq!(plan.shards(), 4);
        let sizes = plan.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 40);
        assert!(sizes.iter().all(|&s| s == 8 || s == 12), "{sizes:?}");
        // Contiguity and alignment: shard id is non-decreasing in node id
        // and constant within each 4-node unit.
        for v in 1..40 {
            assert!(plan.shard_of(v) >= plan.shard_of(v - 1));
            if v % 4 != 0 {
                assert_eq!(plan.shard_of(v), plan.shard_of(v - 1));
            }
        }
    }

    #[test]
    fn more_shards_than_units_leaves_some_empty() {
        let plan = ShardPlan::aligned(6, 7, 2); // 3 units, 7 shards
        let sizes = plan.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert_eq!(sizes.iter().filter(|&&s| s > 0).count(), 3);
    }

    #[test]
    fn level_cut_only_cuts_between_columns() {
        let net = LeveledNet::forward(RadixButterfly::new(2, 4)); // 16 wide, 5 cols
        let plan = LevelCut::new(16).partition(&net, 3);
        let stats = plan.cut_stats(&net);
        assert_eq!(stats.total_links, 4 * 16 * 2);
        // A column band cut severs exactly one column-to-column link layer
        // per boundary: 2 boundaries × width × degree.
        assert_eq!(stats.cut_links, 2 * 16 * 2);
        assert!(stats.balance() <= 1.5, "balance {}", stats.balance());
    }

    #[test]
    fn row_block_cuts_only_vertical_mesh_links() {
        let mesh = Mesh::square(8);
        let plan = RowBlock::new(8).partition(&mesh, 4);
        let stats = plan.cut_stats(&mesh);
        // 3 boundaries, each cutting 8 south links + 8 north links.
        assert_eq!(stats.cut_links, 3 * 16);
        assert_eq!(stats.node_counts, vec![16; 4]);
        assert!((stats.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_respects_capacity_and_covers_all() {
        for k in [1usize, 2, 3, 5] {
            let star = StarGraph::new(4); // 24 nodes, degree 3
            let plan = GreedyEdgeCut.partition(&star, k);
            let sizes = plan.shard_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 24);
            let cap = 24usize.div_ceil(k);
            assert!(sizes.iter().all(|&s| s <= cap), "k={k}: {sizes:?}");
        }
    }

    #[test]
    fn greedy_beats_round_robin_on_mesh_cut() {
        let mesh = Mesh::square(8);
        let greedy = GreedyEdgeCut.partition(&mesh, 4).cut_stats(&mesh);
        // Worst case comparison: striping nodes round-robin cuts almost
        // every link.
        let striped = ShardPlan::new((0..64).map(|v| (v % 4) as u32).collect(), 4);
        let striped = striped.cut_stats(&mesh);
        assert!(
            greedy.cut_links < striped.cut_links,
            "greedy {} vs striped {}",
            greedy.cut_links,
            striped.cut_links
        );
        assert!(greedy.cut_fraction() < 0.5);
    }

    #[test]
    fn greedy_handles_disconnected_networks() {
        let net = ExplicitNetwork::new(vec![vec![], vec![], vec![]], "isolated3");
        let plan = GreedyEdgeCut.partition(&net, 2);
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn cut_stats_fraction_and_balance_math() {
        let net = ExplicitNetwork::undirected(4, &[(0, 1), (1, 2), (2, 3)], "path4");
        let plan = ShardPlan::new(vec![0, 0, 1, 1], 2);
        let stats = plan.cut_stats(&net);
        assert_eq!(stats.total_links, 6);
        assert_eq!(stats.cut_links, 2); // 1→2 and 2→1
        assert!((stats.cut_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert!((stats.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shard id out of range")]
    fn plan_rejects_out_of_range() {
        let _ = ShardPlan::new(vec![0, 2], 2);
    }
}
