//! Runtime dispatch between the serial [`Engine`] and the
//! [`ShardedEngine`], selected by [`SimConfig::shards`].
//!
//! Emulators and routing sessions build an [`AnyEngine`] instead of an
//! `Engine`; `cfg.shards ≤ 1` keeps the single serial engine (zero
//! overhead — the enum dispatch is per run, not per step), `≥ 2`
//! switches to the partitioned lockstep path. Outcomes are
//! bit-identical either way (the `ShardedEngine` determinism contract).

use crate::partition::{GreedyEdgeCut, Partitioner};
use crate::ShardedEngine;
use lnpram_simnet::fault::{FaultError, FaultPlan};
use lnpram_simnet::trace::TraceSink;
use lnpram_simnet::{Engine, Metrics, Outbox, Packet, Protocol, RunOutcome, SimConfig};
use lnpram_topology::Network;

/// Either a serial [`Engine`] or a [`ShardedEngine`], behind the
/// inject/run/reset interface both share.
pub enum AnyEngine {
    /// The single-address-space engine (`cfg.shards ≤ 1`).
    Serial(Engine),
    /// The partitioned lockstep engine (`cfg.shards ≥ 2`).
    Sharded(ShardedEngine),
}

impl AnyEngine {
    /// Build per `cfg.shards` with the topology-agnostic
    /// [`GreedyEdgeCut`] partitioner. Callers that know their topology
    /// should prefer [`AnyEngine::with_partitioner`] with a structure-
    /// aware strategy (`LevelCut`, `RowBlock`).
    pub fn new<N: Network + ?Sized>(net: &N, cfg: SimConfig) -> Self {
        Self::with_partitioner(net, cfg, &GreedyEdgeCut)
    }

    /// Build per `cfg.shards` with an explicit partitioning strategy.
    /// Well-defined for any `cfg.shards`: the sharded path clamps the
    /// shard count to `1..=MAX_SHARDS` **and** to the node count, so
    /// `shards > n` on a tiny network degrades to one single-node shard
    /// per node instead of handing the partitioner a `k` it could only
    /// satisfy with empty shards.
    pub fn with_partitioner<N, P>(net: &N, cfg: SimConfig, part: &P) -> Self
    where
        N: Network + ?Sized,
        P: Partitioner + ?Sized,
    {
        if cfg.shards >= 2 {
            AnyEngine::Sharded(ShardedEngine::new(net, cfg, part))
        } else {
            AnyEngine::Serial(Engine::new(net, cfg))
        }
    }

    /// Is this the partitioned path?
    pub fn is_sharded(&self) -> bool {
        matches!(self, AnyEngine::Sharded(_))
    }

    /// See [`Engine::reset`].
    pub fn reset(&mut self) {
        match self {
            AnyEngine::Serial(e) => e.reset(),
            AnyEngine::Sharded(e) => e.reset(),
        }
    }

    /// See [`Engine::set_max_steps`].
    pub fn set_max_steps(&mut self, max_steps: u32) {
        match self {
            AnyEngine::Serial(e) => e.set_max_steps(max_steps),
            AnyEngine::Sharded(e) => e.set_max_steps(max_steps),
        }
    }

    /// See [`Engine::set_fault_plan`] — identical semantics on both
    /// variants (the sharded coordinator forwards per-link updates to
    /// the owning shards), so faulted runs stay bit-identical across
    /// serial and sharded stepping. Cleared by [`AnyEngine::reset`].
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        match self {
            AnyEngine::Serial(e) => e.set_fault_plan(plan),
            AnyEngine::Sharded(e) => e.set_fault_plan(plan),
        }
    }

    /// See [`Engine::block_link`].
    pub fn block_link(&mut self, node: usize, port: usize) {
        match self {
            AnyEngine::Serial(e) => e.block_link(node, port),
            AnyEngine::Sharded(e) => e.block_link(node, port),
        }
    }

    /// See [`Engine::num_nodes`].
    pub fn num_nodes(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.num_nodes(),
            AnyEngine::Sharded(e) => e.num_nodes(),
        }
    }

    /// See [`Engine::num_links`] — valid global link ids for fault
    /// plans are `0..num_links`.
    pub fn num_links(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.num_links(),
            AnyEngine::Sharded(e) => e.num_links(),
        }
    }

    /// See [`Engine::inject`].
    pub fn inject(&mut self, node: usize, pkt: Packet) {
        match self {
            AnyEngine::Serial(e) => e.inject(node, pkt),
            AnyEngine::Sharded(e) => e.inject(node, pkt),
        }
    }

    /// See [`Engine::run`].
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunOutcome {
        match self {
            AnyEngine::Serial(e) => e.run(proto),
            AnyEngine::Sharded(e) => e.run(proto),
        }
    }

    /// See [`Engine::run_traced`] — identical delivery schedule to
    /// [`AnyEngine::run`] on both variants; only observation differs.
    pub fn run_traced<P: Protocol, S: TraceSink + ?Sized>(
        &mut self,
        proto: &mut P,
        sink: &mut S,
    ) -> RunOutcome {
        match self {
            AnyEngine::Serial(e) => e.run_traced(proto, sink),
            AnyEngine::Sharded(e) => e.run_traced(proto, sink),
        }
    }

    /// See [`Engine::in_flight`].
    pub fn in_flight(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.in_flight(),
            AnyEngine::Sharded(e) => e.in_flight(),
        }
    }

    /// See [`Engine::delivered`] — live mid-run on both variants.
    pub fn delivered(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.delivered(),
            AnyEngine::Sharded(e) => e.delivered(),
        }
    }

    /// See [`Engine::arrivals_len`].
    pub fn arrivals_len(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.arrivals_len(),
            AnyEngine::Sharded(e) => e.arrivals_len(),
        }
    }

    /// See [`Engine::process_pending`] — feed pending injections to the
    /// protocol at `step`, stamping `injected_at`. With the rest of the
    /// stepping API below, an external driver (the serve loop) can
    /// replay exactly what `run` does while admitting packets at
    /// arbitrary step boundaries, with bit-identical outcomes across
    /// both variants.
    pub fn process_pending<P: Protocol>(&mut self, proto: &mut P, step: u32, out: &mut Outbox) {
        match self {
            AnyEngine::Serial(e) => e.process_pending(proto, step, out),
            AnyEngine::Sharded(e) => e.process_pending(proto, step, out),
        }
    }

    /// See [`Engine::step_transmit`] (sharded: transmit all shards and
    /// merge the boundary mailboxes).
    pub fn step_transmit(&mut self) {
        match self {
            AnyEngine::Serial(e) => e.step_transmit(),
            AnyEngine::Sharded(e) => e.step_transmit(),
        }
    }

    /// See [`Engine::step_transmit_traced`] — same transition as
    /// [`AnyEngine::step_transmit`], reporting phase windows, fault
    /// applications, and (sharded) boundary traffic to `sink`.
    pub fn step_transmit_traced<S: TraceSink + ?Sized>(&mut self, sink: &mut S) {
        match self {
            AnyEngine::Serial(e) => e.step_transmit_traced(sink),
            AnyEngine::Sharded(e) => e.step_transmit_traced(sink),
        }
    }

    /// See [`Engine::process_arrivals`].
    pub fn process_arrivals<P: Protocol>(&mut self, proto: &mut P, step: u32, out: &mut Outbox) {
        match self {
            AnyEngine::Serial(e) => e.process_arrivals(proto, step, out),
            AnyEngine::Sharded(e) => e.process_arrivals(proto, step, out),
        }
    }

    /// See [`Engine::step_finish`].
    pub fn step_finish(&mut self) {
        match self {
            AnyEngine::Serial(e) => e.step_finish(),
            AnyEngine::Sharded(e) => e.step_finish(),
        }
    }

    /// See [`Engine::note_queued_step`].
    pub fn note_queued_step(&mut self) {
        match self {
            AnyEngine::Serial(e) => e.note_queued_step(),
            AnyEngine::Sharded(e) => e.note_queued_step(),
        }
    }

    /// See [`Engine::finish_metrics`].
    pub fn finish_metrics(&mut self, steps: u32) -> Metrics {
        match self {
            AnyEngine::Serial(e) => e.finish_metrics(steps),
            AnyEngine::Sharded(e) => e.finish_metrics(steps),
        }
    }

    /// See [`Engine::take_pending`].
    pub fn take_pending(&mut self) -> Vec<(usize, Packet)> {
        match self {
            AnyEngine::Serial(e) => e.take_pending(),
            AnyEngine::Sharded(e) => e.take_pending(),
        }
    }

    /// See [`Engine::max_queue_len`] — the instantaneous backpressure
    /// watermark (identical across variants: shard queues partition the
    /// global queues).
    pub fn max_queue_len(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.max_queue_len(),
            AnyEngine::Sharded(e) => e.max_queue_len(),
        }
    }

    /// See [`Engine::drain_all`].
    pub fn drain_all(&mut self) -> Vec<Packet> {
        match self {
            AnyEngine::Serial(e) => e.drain_all(),
            AnyEngine::Sharded(e) => e.drain_all(),
        }
    }

    /// See [`Engine::link_loads`].
    pub fn link_loads(&self) -> Vec<u32> {
        match self {
            AnyEngine::Serial(e) => e.link_loads(),
            AnyEngine::Sharded(e) => e.link_loads(),
        }
    }
}
