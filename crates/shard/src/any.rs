//! Runtime dispatch between the serial [`Engine`] and the
//! [`ShardedEngine`], selected by [`SimConfig::shards`].
//!
//! Emulators and routing sessions build an [`AnyEngine`] instead of an
//! `Engine`; `cfg.shards ≤ 1` keeps the single serial engine (zero
//! overhead — the enum dispatch is per run, not per step), `≥ 2`
//! switches to the partitioned lockstep path. Outcomes are
//! bit-identical either way (the `ShardedEngine` determinism contract).

use crate::partition::{GreedyEdgeCut, Partitioner};
use crate::ShardedEngine;
use lnpram_simnet::{Engine, Packet, Protocol, RunOutcome, SimConfig};
use lnpram_topology::Network;

/// Either a serial [`Engine`] or a [`ShardedEngine`], behind the
/// inject/run/reset interface both share.
pub enum AnyEngine {
    /// The single-address-space engine (`cfg.shards ≤ 1`).
    Serial(Engine),
    /// The partitioned lockstep engine (`cfg.shards ≥ 2`).
    Sharded(ShardedEngine),
}

impl AnyEngine {
    /// Build per `cfg.shards` with the topology-agnostic
    /// [`GreedyEdgeCut`] partitioner. Callers that know their topology
    /// should prefer [`AnyEngine::with_partitioner`] with a structure-
    /// aware strategy (`LevelCut`, `RowBlock`).
    pub fn new<N: Network + ?Sized>(net: &N, cfg: SimConfig) -> Self {
        Self::with_partitioner(net, cfg, &GreedyEdgeCut)
    }

    /// Build per `cfg.shards` with an explicit partitioning strategy.
    /// Well-defined for any `cfg.shards`: the sharded path clamps the
    /// shard count to `1..=MAX_SHARDS` **and** to the node count, so
    /// `shards > n` on a tiny network degrades to one single-node shard
    /// per node instead of handing the partitioner a `k` it could only
    /// satisfy with empty shards.
    pub fn with_partitioner<N, P>(net: &N, cfg: SimConfig, part: &P) -> Self
    where
        N: Network + ?Sized,
        P: Partitioner + ?Sized,
    {
        if cfg.shards >= 2 {
            AnyEngine::Sharded(ShardedEngine::new(net, cfg, part))
        } else {
            AnyEngine::Serial(Engine::new(net, cfg))
        }
    }

    /// Is this the partitioned path?
    pub fn is_sharded(&self) -> bool {
        matches!(self, AnyEngine::Sharded(_))
    }

    /// See [`Engine::reset`].
    pub fn reset(&mut self) {
        match self {
            AnyEngine::Serial(e) => e.reset(),
            AnyEngine::Sharded(e) => e.reset(),
        }
    }

    /// See [`Engine::set_max_steps`].
    pub fn set_max_steps(&mut self, max_steps: u32) {
        match self {
            AnyEngine::Serial(e) => e.set_max_steps(max_steps),
            AnyEngine::Sharded(e) => e.set_max_steps(max_steps),
        }
    }

    /// See [`Engine::inject`].
    pub fn inject(&mut self, node: usize, pkt: Packet) {
        match self {
            AnyEngine::Serial(e) => e.inject(node, pkt),
            AnyEngine::Sharded(e) => e.inject(node, pkt),
        }
    }

    /// See [`Engine::run`].
    pub fn run<P: Protocol>(&mut self, proto: &mut P) -> RunOutcome {
        match self {
            AnyEngine::Serial(e) => e.run(proto),
            AnyEngine::Sharded(e) => e.run(proto),
        }
    }

    /// See [`Engine::in_flight`].
    pub fn in_flight(&self) -> usize {
        match self {
            AnyEngine::Serial(e) => e.in_flight(),
            AnyEngine::Sharded(e) => e.in_flight(),
        }
    }

    /// See [`Engine::drain_all`].
    pub fn drain_all(&mut self) -> Vec<Packet> {
        match self {
            AnyEngine::Serial(e) => e.drain_all(),
            AnyEngine::Sharded(e) => e.drain_all(),
        }
    }

    /// See [`Engine::link_loads`].
    pub fn link_loads(&self) -> Vec<u32> {
        match self {
            AnyEngine::Serial(e) => e.link_loads(),
            AnyEngine::Sharded(e) => e.link_loads(),
        }
    }
}
