//! # lnpram-shard
//!
//! The sharded simulation subsystem: split a
//! [`Network`](lnpram_topology::Network) into `k` partitions, give each
//! partition its own [`Engine`](lnpram_simnet::Engine) over its induced
//! sub-CSR, and step all shards in lockstep per global step, exchanging
//! cross-shard packets through fixed-capacity boundary mailboxes merged
//! in a deterministic order (global link id, then injection order).
//!
//! The subsystem's invariant — pinned by property tests over random
//! butterflies, stars and meshes — is that [`ShardedEngine::run`] is
//! **bit-identical** to a single serial `Engine::run` on the whole
//! network: same metrics, same deliveries, same link loads, for any
//! protocol and any partition. Sharding is therefore purely a scaling
//! lever: it trades a small coordination tax (mailbox merge, lockstep
//! barrier) for transmit-phase parallelism across shards and is the
//! substrate later scaling work (async shard stepping, cross-process
//! shards, multi-tenant batching) builds on.
//!
//! * [`partition`] — the [`Partitioner`] strategies ([`LevelCut`] for
//!   leveled networks, [`RowBlock`] for meshes, [`GreedyEdgeCut`] for
//!   anything) and cut-quality metrics.
//! * [`engine`] — the [`ShardedEngine`] lockstep coordinator.
//! * [`any`] — [`AnyEngine`], the serial/sharded dispatch behind
//!   [`SimConfig::shards`](lnpram_simnet::SimConfig) that the emulators
//!   and routing sessions construct.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod engine;
pub mod partition;

pub use any::AnyEngine;
pub use engine::{ShardedEngine, MAX_SHARDS};
pub use partition::{CutStats, GreedyEdgeCut, LevelCut, Partitioner, RowBlock, ShardPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use lnpram_math::rng::splitmix64;
    use lnpram_simnet::{Discipline, Engine, Metrics, Outbox, Packet, Protocol, SimConfig};
    use lnpram_topology::leveled::{Leveled, LeveledNet, RadixButterfly};
    use lnpram_topology::{Mesh, Network, StarGraph};

    /// Observable fingerprint of a run: every `RunOutcome` field,
    /// including the latency histogram buckets and per-link loads.
    type Fingerprint = (bool, usize, u32, usize, u64, u32, Vec<(u64, u64)>, Vec<u32>);

    fn fingerprint(completed: bool, m: &Metrics) -> Fingerprint {
        (
            completed,
            m.delivered,
            m.routing_time,
            m.max_queue,
            m.queued_packet_steps,
            m.steps,
            m.latency.buckets().collect(),
            m.link_loads.clone(),
        )
    }

    fn cfg_serial() -> SimConfig {
        SimConfig {
            record_link_loads: true,
            ..Default::default()
        }
    }

    fn cfg_sharded(k: usize) -> SimConfig {
        SimConfig {
            record_link_loads: true,
            shards: k,
            ..Default::default()
        }
    }

    /// Greedy dimension-order mesh router (same as the engine's test
    /// router — cross-shard traffic in every direction).
    struct GreedyMesh {
        mesh: Mesh,
    }

    impl Protocol for GreedyMesh {
        fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
            if node == pkt.dest as usize {
                out.deliver(pkt);
                return;
            }
            use lnpram_topology::mesh::Dir;
            let (r, c) = self.mesh.coords(node);
            let (dr, dc) = self.mesh.coords(pkt.dest as usize);
            let dir = if c < dc {
                Dir::East
            } else if c > dc {
                Dir::West
            } else if r < dr {
                Dir::South
            } else {
                Dir::North
            };
            let port = self.mesh.port_of_dir(node, dir).expect("valid dir");
            out.send(port, pkt);
        }
    }

    /// Oblivious butterfly router over the forward `LeveledNet` view:
    /// follow the unique path to `pkt.dest`, deliver at the last column.
    struct ButterflyRouter {
        net: LeveledNet<RadixButterfly>,
    }

    impl Protocol for ButterflyRouter {
        fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
            let lv = self.net.leveled();
            let (col, idx) = self.net.split(node);
            if col == lv.levels() {
                out.deliver(pkt);
                return;
            }
            out.send(lv.digit_toward(col, idx, pkt.dest as usize), pkt);
        }
    }

    /// Canonical-route star router (topology-provided oblivious paths).
    struct StarRouter {
        star: StarGraph,
    }

    impl Protocol for StarRouter {
        fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
            match self.star.canonical_next_port(node, pkt.dest as usize) {
                None => out.deliver(pkt),
                Some(port) => out.send(port, pkt),
            }
        }
    }

    fn run_serial<N, P>(
        net: &N,
        cfg: SimConfig,
        inject: &[(usize, Packet)],
        proto: &mut P,
    ) -> Fingerprint
    where
        N: Network + ?Sized,
        P: Protocol,
    {
        let mut eng = Engine::new(net, cfg);
        for &(node, pkt) in inject {
            eng.inject(node, pkt);
        }
        let out = eng.run(proto);
        fingerprint(out.completed, &out.metrics)
    }

    fn run_sharded<N, P, Q>(
        net: &N,
        cfg: SimConfig,
        part: &Q,
        inject: &[(usize, Packet)],
        proto: &mut P,
    ) -> Fingerprint
    where
        N: Network + ?Sized,
        P: Protocol,
        Q: Partitioner,
    {
        let mut eng = ShardedEngine::new(net, cfg, part);
        for &(node, pkt) in inject {
            eng.inject(node, pkt);
        }
        let out = eng.run(proto);
        fingerprint(out.completed, &out.metrics)
    }

    /// Serial run under a fault plan: fingerprint plus the stranded
    /// packets in drain order (both must match the sharded run).
    fn run_serial_faulted<N, P>(
        net: &N,
        cfg: SimConfig,
        plan: &lnpram_simnet::FaultPlan,
        inject: &[(usize, Packet)],
        proto: &mut P,
    ) -> (Fingerprint, Vec<Packet>)
    where
        N: Network + ?Sized,
        P: Protocol,
    {
        let mut eng = Engine::new(net, cfg);
        eng.set_fault_plan(plan).expect("valid plan");
        for &(node, pkt) in inject {
            eng.inject(node, pkt);
        }
        let out = eng.run(proto);
        let stranded = eng.drain_all();
        (fingerprint(out.completed, &out.metrics), stranded)
    }

    /// Sharded counterpart of [`run_serial_faulted`].
    fn run_sharded_faulted<N, P, Q>(
        net: &N,
        cfg: SimConfig,
        part: &Q,
        plan: &lnpram_simnet::FaultPlan,
        inject: &[(usize, Packet)],
        proto: &mut P,
    ) -> (Fingerprint, Vec<Packet>)
    where
        N: Network + ?Sized,
        P: Protocol,
        Q: Partitioner,
    {
        let mut eng = ShardedEngine::new(net, cfg, part);
        eng.set_fault_plan(plan).expect("valid plan");
        for &(node, pkt) in inject {
            eng.inject(node, pkt);
        }
        let out = eng.run(proto);
        let stranded = eng.drain_all();
        (fingerprint(out.completed, &out.metrics), stranded)
    }

    /// Deterministic random fault plan over a network with `nodes`
    /// nodes and `links` links: a few link fail/recover pairs, a
    /// degrade, and possibly a node failure, all within `horizon`.
    fn random_fault_plan(
        state: &mut u64,
        nodes: usize,
        links: usize,
        horizon: u32,
    ) -> lnpram_simnet::FaultPlan {
        use lnpram_simnet::{Fault, FaultEvent};
        let mut events = Vec::new();
        let link_faults = (splitmix64(state) % 4) as usize;
        for _ in 0..link_faults {
            let link = (splitmix64(state) as usize) % links;
            let at = 1 + (splitmix64(state) as u32) % horizon;
            events.push(FaultEvent {
                step: at,
                fault: Fault::LinkFail { link },
            });
            if splitmix64(state).is_multiple_of(2) {
                events.push(FaultEvent {
                    step: at + 1 + (splitmix64(state) as u32) % horizon,
                    fault: Fault::LinkRecover { link },
                });
            }
        }
        if splitmix64(state).is_multiple_of(2) {
            let link = (splitmix64(state) as usize) % links;
            events.push(FaultEvent {
                step: 1 + (splitmix64(state) as u32) % horizon,
                fault: Fault::LinkDegrade {
                    link,
                    period: 2 + (splitmix64(state) % 3) as u32,
                },
            });
        }
        if splitmix64(state).is_multiple_of(3) {
            let node = (splitmix64(state) as usize) % nodes;
            let at = 1 + (splitmix64(state) as u32) % horizon;
            events.push(FaultEvent {
                step: at,
                fault: Fault::NodeFail { node },
            });
            if splitmix64(state).is_multiple_of(2) {
                events.push(FaultEvent {
                    step: at + 1 + (splitmix64(state) as u32) % horizon,
                    fault: Fault::NodeRecover { node },
                });
            }
        }
        lnpram_simnet::FaultPlan::new(events)
    }

    #[test]
    fn sharded_equals_serial_on_mesh_all_k() {
        let mesh = Mesh::new(6, 7);
        let n = mesh.num_nodes();
        let mut state = 0xC0FFEE_u64;
        let inject: Vec<(usize, Packet)> = (0..n)
            .map(|src| {
                let dest = (splitmix64(&mut state) as usize) % n;
                (src, Packet::new(src as u32, src as u32, dest as u32))
            })
            .collect();
        let serial = run_serial(&mesh, cfg_serial(), &inject, &mut GreedyMesh { mesh });
        for k in [1usize, 2, 4, 7] {
            let sharded = run_sharded(
                &mesh,
                cfg_sharded(k),
                &RowBlock::new(mesh.cols()),
                &inject,
                &mut GreedyMesh { mesh },
            );
            assert_eq!(serial, sharded, "K={k}");
        }
    }

    #[test]
    fn sharded_equals_serial_on_star_with_greedy_partition() {
        let star_n = 4usize;
        let star = StarGraph::new(star_n); // 24 nodes
        let n = star.num_nodes();
        let inject: Vec<(usize, Packet)> = (0..n)
            .map(|src| {
                let dest = (src * 7 + 3) % n;
                (src, Packet::new(src as u32, src as u32, dest as u32))
            })
            .collect();
        let serial = run_serial(
            &star,
            cfg_serial(),
            &inject,
            &mut StarRouter {
                star: StarGraph::new(star_n),
            },
        );
        for k in [2usize, 4, 7] {
            let sharded = run_sharded(
                &star,
                cfg_sharded(k),
                &GreedyEdgeCut,
                &inject,
                &mut StarRouter {
                    star: StarGraph::new(star_n),
                },
            );
            assert_eq!(serial, sharded, "K={k}");
        }
    }

    #[test]
    fn sharded_equals_serial_on_butterfly_h_relation() {
        let inner = RadixButterfly::new(2, 5); // 32 wide
        let net = LeveledNet::forward(inner);
        let width = inner.width();
        let mut state = 0xFEED_u64;
        let mut inject = Vec::new();
        let mut id = 0u32;
        for src in 0..width {
            for _ in 0..3 {
                let dest = (splitmix64(&mut state) as usize) % width;
                inject.push((
                    net.node_id(0, src),
                    Packet::new(id, src as u32, dest as u32),
                ));
                id += 1;
            }
        }
        let serial = run_serial(
            &net,
            cfg_serial(),
            &inject,
            &mut ButterflyRouter {
                net: LeveledNet::forward(inner),
            },
        );
        for k in [2usize, 4, 7] {
            let sharded = run_sharded(
                &net,
                cfg_sharded(k),
                &LevelCut::new(width),
                &inject,
                &mut ButterflyRouter {
                    net: LeveledNet::forward(inner),
                },
            );
            assert_eq!(serial, sharded, "K={k}");
        }
    }

    #[test]
    fn incomplete_runs_match_and_drain_in_same_order() {
        // Tight budget: both paths abort identically and drain the same
        // stranded packets in the same global link order.
        let mesh = Mesh::square(6);
        let n = mesh.num_nodes();
        let cfg = |shards| SimConfig {
            max_steps: 3,
            record_link_loads: true,
            shards,
            ..Default::default()
        };
        let inject: Vec<(usize, Packet)> = (0..n)
            .map(|src| {
                let dest = (src * 29 + 1) % n;
                (src, Packet::new(src as u32, src as u32, dest as u32))
            })
            .collect();
        let mut serial = Engine::new(&mesh, cfg(0));
        let mut sharded = ShardedEngine::new(&mesh, cfg(4), &RowBlock::new(6));
        for &(node, pkt) in &inject {
            serial.inject(node, pkt);
            sharded.inject(node, pkt);
        }
        let a = serial.run(&mut GreedyMesh { mesh });
        let b = sharded.run(&mut GreedyMesh { mesh });
        assert!(!a.completed && !b.completed);
        assert_eq!(
            fingerprint(a.completed, &a.metrics),
            fingerprint(b.completed, &b.metrics)
        );
        assert_eq!(serial.in_flight(), sharded.in_flight());
        assert_eq!(serial.drain_all(), sharded.drain_all());
        assert_eq!(serial.in_flight(), 0);
        assert_eq!(sharded.in_flight(), 0);
    }

    #[test]
    fn furthest_first_discipline_matches() {
        let mesh = Mesh::square(5);
        let n = mesh.num_nodes();
        let cfg = |shards| SimConfig {
            discipline: Discipline::FurthestFirst,
            record_link_loads: true,
            shards,
            ..Default::default()
        };
        let mut state = 7_u64;
        let inject: Vec<(usize, Packet)> = (0..n)
            .flat_map(|src| {
                let d1 = (splitmix64(&mut state) as usize) % n;
                let d2 = (splitmix64(&mut state) as usize) % n;
                [
                    (
                        src,
                        Packet::new((2 * src) as u32, src as u32, d1 as u32)
                            .with_priority((splitmix64(&mut state) % 5) as u32),
                    ),
                    (
                        src,
                        Packet::new((2 * src + 1) as u32, src as u32, d2 as u32)
                            .with_priority((splitmix64(&mut state) % 5) as u32),
                    ),
                ]
            })
            .collect();
        let serial = run_serial(&mesh, cfg(0), &inject, &mut GreedyMesh { mesh });
        let sharded = run_sharded(
            &mesh,
            cfg(3),
            &RowBlock::new(5),
            &inject,
            &mut GreedyMesh { mesh },
        );
        assert_eq!(serial, sharded);
    }

    #[test]
    fn reset_then_rerun_matches_fresh_sharded_engine() {
        let mesh = Mesh::square(6);
        let n = mesh.num_nodes();
        let part = RowBlock::new(6);
        let mut reused = ShardedEngine::new(&mesh, cfg_sharded(4), &part);
        for round in 0..4usize {
            reused.reset();
            let mut fresh = ShardedEngine::new(&mesh, cfg_sharded(4), &part);
            let mut state = round as u64 ^ 0xBEEF;
            for src in 0..n {
                let dest = (splitmix64(&mut state) as usize) % n;
                let pkt = Packet::new(src as u32, src as u32, dest as u32);
                reused.inject(src, pkt);
                fresh.inject(src, pkt);
            }
            let a = reused.run(&mut GreedyMesh { mesh });
            let b = fresh.run(&mut GreedyMesh { mesh });
            assert_eq!(
                fingerprint(a.completed, &a.metrics),
                fingerprint(b.completed, &b.metrics),
                "round {round}"
            );
            assert_eq!(reused.link_loads(), fresh.link_loads());
        }
    }

    #[test]
    fn any_engine_dispatches_on_shards_knob() {
        let mesh = Mesh::square(4);
        let serial = AnyEngine::new(&mesh, SimConfig::default());
        assert!(!serial.is_sharded());
        let sharded = AnyEngine::new(
            &mesh,
            SimConfig {
                shards: 3,
                ..Default::default()
            },
        );
        assert!(sharded.is_sharded());
    }

    #[test]
    fn any_engine_serial_and_sharded_agree() {
        let mesh = Mesh::square(6);
        let n = mesh.num_nodes();
        let run = |shards: usize| {
            let cfg = SimConfig {
                record_link_loads: true,
                shards,
                ..Default::default()
            };
            let mut eng = AnyEngine::with_partitioner(&mesh, cfg, &RowBlock::new(6));
            for src in 0..n {
                let dest = (src * 31 + 17) % n;
                eng.inject(src, Packet::new(src as u32, src as u32, dest as u32));
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            (fingerprint(out.completed, &out.metrics), eng.link_loads())
        };
        assert_eq!(run(0), run(4));
    }

    #[test]
    fn shard_count_above_node_count_is_clamped_and_equivalent() {
        // Satellite regression: K > n used to hand GreedyEdgeCut /
        // LevelCut a shard count they could only satisfy with empty
        // shards. `ShardedEngine::new` now clamps K to the node count;
        // outcomes stay bit-identical to serial either way.
        use lnpram_topology::graph::ExplicitNetwork;
        let star3 = ExplicitNetwork::undirected(3, &[(0, 1), (0, 2)], "star3");
        let inject: Vec<(usize, Packet)> = vec![
            (1, Packet::new(0, 1, 2)),
            (2, Packet::new(1, 2, 1)),
            (0, Packet::new(2, 0, 1)),
        ];
        // Direct router: hub-and-spoke — port 0 of a leaf is the hub.
        struct Star3Router;
        impl Protocol for Star3Router {
            fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
                if node == pkt.dest as usize {
                    out.deliver(pkt);
                } else if node == 0 {
                    out.send(pkt.dest as usize - 1, pkt);
                } else {
                    out.send(0, pkt);
                }
            }
        }
        let serial = run_serial(&star3, cfg_serial(), &inject, &mut Star3Router);
        let eng = ShardedEngine::new(&star3, cfg_sharded(7), &GreedyEdgeCut);
        assert_eq!(eng.shards(), 3, "K=7 on 3 nodes must clamp to 3");
        let greedy = run_sharded(
            &star3,
            cfg_sharded(7),
            &GreedyEdgeCut,
            &inject,
            &mut Star3Router,
        );
        assert_eq!(serial, greedy, "greedy K>n");
        let level = run_sharded(
            &star3,
            cfg_sharded(9),
            &LevelCut::new(1),
            &inject,
            &mut Star3Router,
        );
        assert_eq!(serial, level, "level-cut K>n");
        // AnyEngine takes the same path.
        let mut any = AnyEngine::with_partitioner(&star3, cfg_sharded(7), &GreedyEdgeCut);
        assert!(any.is_sharded());
        for &(node, pkt) in &inject {
            any.inject(node, pkt);
        }
        let out = any.run(&mut Star3Router);
        assert_eq!(serial, fingerprint(out.completed, &out.metrics));
    }

    #[test]
    fn explicit_plan_with_empty_shard_is_simulated_correctly() {
        // Explicit plans are not clamped: an empty shard is legal and
        // must not perturb the determinism contract.
        let mesh = Mesh::square(4);
        let n = mesh.num_nodes();
        let inject: Vec<(usize, Packet)> = (0..n)
            .map(|src| {
                let dest = (src * 5 + 2) % n;
                (src, Packet::new(src as u32, src as u32, dest as u32))
            })
            .collect();
        let serial = run_serial(&mesh, cfg_serial(), &inject, &mut GreedyMesh { mesh });
        // Shard 1 owns nothing; shards 0 and 2 split the mesh in halves.
        let plan = ShardPlan::new((0..n).map(|v| if v < n / 2 { 0 } else { 2 }).collect(), 3);
        let mut eng = ShardedEngine::with_plan(&mesh, cfg_sharded(3), plan);
        for &(node, pkt) in &inject {
            eng.inject(node, pkt);
        }
        let out = eng.run(&mut GreedyMesh { mesh });
        assert_eq!(serial, fingerprint(out.completed, &out.metrics));
    }

    #[test]
    fn worker_pool_path_matches_inline_path() {
        // Force the pool on (threads > 1) vs off (threads = 1): the
        // transmit fan-out must not change any observable.
        let mesh = Mesh::square(8);
        let n = mesh.num_nodes();
        let run = |threads: usize| {
            let cfg = SimConfig {
                threads,
                record_link_loads: true,
                shards: 4,
                ..Default::default()
            };
            let mut eng = ShardedEngine::new(&mesh, cfg, &RowBlock::new(8));
            let mut state = 99u64;
            for src in 0..n {
                for j in 0..4 {
                    let dest = (splitmix64(&mut state) as usize) % n;
                    eng.inject(
                        src,
                        Packet::new((4 * src + j) as u32, src as u32, dest as u32),
                    );
                }
            }
            let out = eng.run(&mut GreedyMesh { mesh });
            fingerprint(out.completed, &out.metrics)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn stateful_protocol_sees_serial_callback_order() {
        // A protocol that hashes its full callback sequence: the sharded
        // path must replay the serial order exactly (this is what keeps
        // Ranade-style combining correct with no protocol adaptation).
        struct Tracing {
            mesh: Mesh,
            hash: u64,
        }
        impl Protocol for Tracing {
            fn on_packet(&mut self, node: usize, pkt: Packet, step: u32, out: &mut Outbox) {
                let mut x = self
                    .hash
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((node as u64) << 32 | (pkt.id as u64) << 8 | step as u64);
                self.hash = splitmix64(&mut x);
                GreedyMesh { mesh: self.mesh }.on_packet(node, pkt, step, out);
            }
            fn on_step_end(&mut self, step: u32) {
                self.hash = self.hash.rotate_left(7) ^ u64::from(step);
            }
        }
        let mesh = Mesh::square(6);
        let n = mesh.num_nodes();
        let inject: Vec<(usize, Packet)> = (0..n)
            .map(|src| {
                (
                    src,
                    Packet::new(src as u32, src as u32, ((src * 13 + 5) % n) as u32),
                )
            })
            .collect();
        let mut a = Tracing { mesh, hash: 1 };
        let mut b = Tracing { mesh, hash: 1 };
        let fa = run_serial(&mesh, cfg_serial(), &inject, &mut a);
        let fb = run_sharded(&mesh, cfg_sharded(4), &RowBlock::new(6), &inject, &mut b);
        assert_eq!(fa, fb);
        assert_eq!(a.hash, b.hash, "callback sequences diverged");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The tentpole pin: sharded(K) == serial for K ∈ {1,2,4,7}
            /// on random meshes with random many-one workloads.
            #[test]
            fn prop_sharded_equals_serial_mesh(
                seed: u64,
                rows in 2usize..7,
                cols in 2usize..7,
                load in 1usize..3,
            ) {
                let mesh = Mesh::new(rows, cols);
                let n = mesh.num_nodes();
                let mut state = seed;
                let mut inject = Vec::new();
                let mut id = 0u32;
                for src in 0..n {
                    for _ in 0..load {
                        let dest = (splitmix64(&mut state) as usize) % n;
                        inject.push((src, Packet::new(id, src as u32, dest as u32)));
                        id += 1;
                    }
                }
                let serial = run_serial(&mesh, cfg_serial(), &inject, &mut GreedyMesh { mesh });
                for k in [1usize, 2, 4, 7] {
                    let sharded = run_sharded(
                        &mesh,
                        cfg_sharded(k),
                        &RowBlock::new(mesh.cols()),
                        &inject,
                        &mut GreedyMesh { mesh },
                    );
                    prop_assert_eq!(&serial, &sharded, "K={}", k);
                }
            }

            /// The fault-subsystem pin: for ANY random `FaultPlan` —
            /// link fail/degrade/recover, node failures, recoveries —
            /// sharded(K) == serial at K ∈ {1,2,4,7}: identical
            /// fingerprint (even when the run aborts incomplete with
            /// stranded packets) and identical drain order.
            #[test]
            fn prop_sharded_equals_serial_under_fault_plans(
                seed: u64,
                rows in 2usize..7,
                cols in 2usize..7,
            ) {
                let mesh = Mesh::new(rows, cols);
                let n = mesh.num_nodes();
                let mut state = seed;
                let inject: Vec<(usize, Packet)> = (0..n)
                    .map(|src| {
                        let dest = (splitmix64(&mut state) as usize) % n;
                        (src, Packet::new(src as u32, src as u32, dest as u32))
                    })
                    .collect();
                let links = Engine::new(&mesh, cfg_serial()).num_links();
                let plan = random_fault_plan(&mut state, n, links, 12);
                // Permanent faults can strand packets: bound the run so
                // the incomplete outcome itself is part of the pin.
                let bounded = |cfg: SimConfig| SimConfig { max_steps: 200, ..cfg };
                let serial = run_serial_faulted(
                    &mesh, bounded(cfg_serial()), &plan, &inject, &mut GreedyMesh { mesh });
                for k in [1usize, 2, 4, 7] {
                    let sharded = run_sharded_faulted(
                        &mesh,
                        bounded(cfg_sharded(k)),
                        &RowBlock::new(mesh.cols()),
                        &plan,
                        &inject,
                        &mut GreedyMesh { mesh },
                    );
                    prop_assert_eq!(&serial.0, &sharded.0, "fingerprint K={}", k);
                    prop_assert_eq!(&serial.1, &sharded.1, "drain order K={}", k);
                }
            }

            /// Sharded == serial on random butterflies under random
            /// h-relations, for both level-cut and greedy partitions.
            #[test]
            fn prop_sharded_equals_serial_butterfly(
                seed: u64,
                dims in 2usize..5,
                h in 1usize..4,
                k in 2usize..6,
            ) {
                let inner = RadixButterfly::new(2, dims);
                let net = LeveledNet::forward(inner);
                let width = inner.width();
                let mut state = seed;
                let mut inject = Vec::new();
                let mut id = 0u32;
                for src in 0..width {
                    for _ in 0..h {
                        let dest = (splitmix64(&mut state) as usize) % width;
                        inject.push((net.node_id(0, src), Packet::new(id, src as u32, dest as u32)));
                        id += 1;
                    }
                }
                let serial = run_serial(&net, cfg_serial(), &inject, &mut ButterflyRouter { net: LeveledNet::forward(inner) });
                let level = run_sharded(
                    &net, cfg_sharded(k), &LevelCut::new(width), &inject,
                    &mut ButterflyRouter { net: LeveledNet::forward(inner) });
                prop_assert_eq!(&serial, &level);
                let greedy = run_sharded(
                    &net, cfg_sharded(k), &GreedyEdgeCut, &inject,
                    &mut ButterflyRouter { net: LeveledNet::forward(inner) });
                prop_assert_eq!(&serial, &greedy);
            }

            /// Sharded == serial on random stars (permutation-ish
            /// traffic over canonical routes).
            #[test]
            fn prop_sharded_equals_serial_star(seed: u64, star_n in 3usize..5, k in 2usize..6) {
                let star = StarGraph::new(star_n);
                let nodes = star.num_nodes();
                let mut state = seed;
                let inject: Vec<(usize, Packet)> = (0..nodes)
                    .map(|src| {
                        let dest = (splitmix64(&mut state) as usize) % nodes;
                        (src, Packet::new(src as u32, src as u32, dest as u32))
                    })
                    .collect();
                let serial = run_serial(&star, cfg_serial(), &inject, &mut StarRouter { star: StarGraph::new(star_n) });
                let sharded = run_sharded(
                    &star, cfg_sharded(k), &GreedyEdgeCut, &inject,
                    &mut StarRouter { star: StarGraph::new(star_n) });
                prop_assert_eq!(serial, sharded);
            }

            /// reset() + rerun on one ShardedEngine equals a fresh
            /// ShardedEngine, for any workload and K.
            #[test]
            fn prop_sharded_reset_equals_fresh(seed: u64, side in 2usize..6, k in 2usize..6) {
                let mesh = Mesh::square(side);
                let n = mesh.num_nodes();
                let part = RowBlock::new(side);
                let mut reused = ShardedEngine::new(&mesh, cfg_sharded(k), &part);
                for round in 0..3u64 {
                    reused.reset();
                    let mut fresh = ShardedEngine::new(&mesh, cfg_sharded(k), &part);
                    let mut state = seed ^ round;
                    for src in 0..n {
                        let dest = (splitmix64(&mut state) as usize) % n;
                        let pkt = Packet::new(src as u32, src as u32, dest as u32);
                        reused.inject(src, pkt);
                        fresh.inject(src, pkt);
                    }
                    let a = reused.run(&mut GreedyMesh { mesh });
                    let b = fresh.run(&mut GreedyMesh { mesh });
                    prop_assert_eq!(
                        fingerprint(a.completed, &a.metrics),
                        fingerprint(b.completed, &b.metrics)
                    );
                    prop_assert_eq!(reused.link_loads(), fresh.link_loads());
                    prop_assert_eq!(reused.check_invariants(), Ok(()));
                    prop_assert_eq!(fresh.check_invariants(), Ok(()));
                }
            }

            /// The coordinator-level invariants (cross-shard packet
            /// conservation, link-table/ghost-head accounting) and each
            /// shard engine's own state invariants hold at *every*
            /// global step boundary — the dynamic complement of
            /// `lnpram-lint`, at the layer where a mailbox-exchange bug
            /// would first appear.
            #[test]
            fn prop_sharded_invariants_hold_at_every_step(
                seed: u64,
                rows in 2usize..6,
                cols in 2usize..6,
                k in 2usize..6,
            ) {
                let mesh = Mesh::new(rows, cols);
                let n = mesh.num_nodes();
                let mut eng = ShardedEngine::new(&mesh, cfg_sharded(k), &RowBlock::new(cols));
                let mut state = seed;
                for src in 0..n {
                    let dest = (splitmix64(&mut state) as usize) % n;
                    eng.inject(src, Packet::new(src as u32, src as u32, dest as u32));
                }
                let mut proto = GreedyMesh { mesh };
                let mut out = Outbox::default();
                eng.process_pending(&mut proto, 0, &mut out);
                eng.step_finish();
                prop_assert_eq!(eng.check_invariants(), Ok(()));
                let mut step = 0u32;
                while eng.in_flight() > 0 {
                    step += 1;
                    prop_assert!(step <= 10_000, "driver ran away");
                    eng.step_transmit();
                    eng.process_arrivals(&mut proto, step, &mut out);
                    eng.step_finish();
                    prop_assert_eq!(eng.check_invariants(), Ok(()));
                }
            }
        }
    }
}
