//! Emulator configuration and statistics.

use lnpram_simnet::Discipline;

/// Parameters of a PRAM emulation.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    /// Per-routing-phase step budget as a multiple of the network
    /// diameter (`d(ℓ)` in §2.1: "the communication is supposed to be
    /// finished in d(ℓ) time"). A phase that overruns triggers a rehash.
    pub budget_factor: u32,
    /// Hash-family degree parameter as a multiple of the diameter
    /// (`S = cL`, §2.1).
    pub hash_degree_factor: usize,
    /// Explicit hash degree S, overriding `hash_degree_factor` when set
    /// (the A3 ablation uses this to force constant-degree hashing).
    pub hash_degree_override: Option<usize>,
    /// Queueing discipline for the routing phases.
    pub discipline: Discipline,
    /// Give up after this many rehashes within one PRAM step (the budget
    /// doubles after each, so this also bounds the worst-case step time).
    pub max_rehashes: u32,
    /// Enable CRCW read combining (Theorem 2.6 / footnote 3). With this
    /// off, concurrent reads of one cell are serviced as separate packets
    /// — the ablation of table A4.
    pub combining: bool,
    /// Seed for hash sampling and routing randomness.
    pub seed: u64,
    /// Partition the routing engines into this many shards
    /// (`lnpram-shard`): `0`/`1` = single serial engine, `≥ 2` = the
    /// lockstep sharded path, clamped to `lnpram-shard`'s `MAX_SHARDS`
    /// (15). Results are bit-identical either way (the sharded
    /// determinism contract); the knob only changes how the network
    /// simulation scales. Honoured by the leveled, star and mesh
    /// emulators; the replicated baseline always runs serial.
    pub shards: usize,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig {
            budget_factor: 16,
            hash_degree_factor: 1,
            hash_degree_override: None,
            discipline: Discipline::Fifo,
            max_rehashes: 8,
            combining: true,
            seed: 0,
            shards: 0,
        }
    }
}

/// Statistics for one emulated PRAM step.
#[derive(Debug, Clone, Default)]
pub struct StepStats {
    /// Network steps of the request phase.
    pub request_steps: u32,
    /// Network steps of the reply phase.
    pub reply_steps: u32,
    /// Serial service steps at the busiest module (batch size).
    pub service_steps: u32,
    /// Request packets injected (after local issue).
    pub requests: u32,
    /// Combining events: read requests absorbed into pending entries plus
    /// same-step en-route write merges (footnote 3).
    pub combined: u32,
    /// Largest link queue seen in either phase.
    pub max_queue: u32,
    /// Rehashes triggered while emulating this step.
    pub rehashes: u32,
}

impl StepStats {
    /// Total charged time of this PRAM step in network steps.
    pub fn total_steps(&self) -> u32 {
        self.request_steps + self.reply_steps + self.service_steps
    }
}

/// Aggregate report of an emulated program run.
#[derive(Debug, Clone, Default)]
pub struct EmuReport {
    /// Emulated PRAM steps.
    pub pram_steps: usize,
    /// Per-step statistics.
    pub steps: Vec<StepStats>,
    /// Total rehash events.
    pub rehashes: u32,
    /// Total charged remap steps (rehash redistribution cost).
    pub remap_steps: u64,
}

impl EmuReport {
    /// Total network steps over all PRAM steps (excluding remap charges).
    pub fn network_steps(&self) -> u64 {
        self.steps.iter().map(|s| u64::from(s.total_steps())).sum()
    }

    /// Mean network steps per PRAM step.
    pub fn mean_step_time(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.network_steps() as f64 / self.steps.len() as f64
        }
    }

    /// Worst single-step time.
    pub fn max_step_time(&self) -> u32 {
        self.steps
            .iter()
            .map(StepStats::total_steps)
            .max()
            .unwrap_or(0)
    }

    /// The emulation constant: mean step time divided by `diameter` — the
    /// quantity Theorems 2.5/2.6 and 3.2 bound by a constant.
    pub fn slowdown_per_diameter(&self, diameter: usize) -> f64 {
        self.mean_step_time() / diameter.max(1) as f64
    }

    /// Total read-combining events.
    pub fn total_combined(&self) -> u64 {
        self.steps.iter().map(|s| u64::from(s.combined)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_total_adds_phases() {
        let s = StepStats {
            request_steps: 10,
            reply_steps: 12,
            service_steps: 3,
            ..Default::default()
        };
        assert_eq!(s.total_steps(), 25);
    }

    #[test]
    fn report_aggregates() {
        let mut rep = EmuReport::default();
        for (a, b) in [(5u32, 7u32), (9, 11)] {
            rep.steps.push(StepStats {
                request_steps: a,
                reply_steps: b,
                combined: 2,
                ..Default::default()
            });
        }
        rep.pram_steps = 2;
        assert_eq!(rep.network_steps(), 32);
        assert!((rep.mean_step_time() - 16.0).abs() < 1e-12);
        assert_eq!(rep.max_step_time(), 20);
        assert!((rep.slowdown_per_diameter(8) - 2.0).abs() < 1e-12);
        assert_eq!(rep.total_combined(), 4);
    }

    #[test]
    fn empty_report_is_zero() {
        let rep = EmuReport::default();
        assert_eq!(rep.mean_step_time(), 0.0);
        assert_eq!(rep.max_step_time(), 0);
    }
}
