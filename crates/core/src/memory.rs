//! Distributed memory modules with PRAM batch-service semantics.
//!
//! Each network memory module owns the shared-memory cells hashed to it.
//! During a routing phase it only *buffers* arriving requests; when the
//! phase completes, the whole batch is served with read-before-write
//! semantics — all reads observe the pre-step memory, then all writes are
//! applied under the CRCW policy via the same
//! `resolve_write` used by the
//! reference machine. This guarantees emulated results are bit-identical
//! to the oracle regardless of packet arrival order.

use lnpram_pram::machine::resolve_write;
use lnpram_pram::model::{AccessMode, AccessViolation};
use std::collections::HashMap;

/// One buffered request at a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleRequest {
    /// Read of `addr`. `trail` is the reply-routing tag: 0 under
    /// combining (one read per distinct address), the requesting
    /// processor id otherwise (one read per requester).
    Read {
        /// The shared-memory address.
        addr: u64,
        /// Reply trail tag (see [`crate::combining`]).
        trail: u32,
    },
    /// Write of `value` to `addr` by `proc` (proc id breaks Priority ties).
    Write {
        /// The shared-memory address.
        addr: u64,
        /// Value written.
        value: u64,
        /// Originating processor (for Priority/Arbitrary resolution).
        proc: usize,
    },
}

/// The set of memory modules of an emulating network.
#[derive(Debug, Clone)]
pub struct ModuleArray {
    cells: Vec<HashMap<u64, u64>>,
    mode: AccessMode,
    batches: Vec<Vec<ModuleRequest>>,
    violations: Vec<AccessViolation>,
}

impl ModuleArray {
    /// `modules` empty modules.
    pub fn new(modules: usize, mode: AccessMode) -> Self {
        ModuleArray {
            cells: vec![HashMap::new(); modules],
            mode,
            batches: vec![Vec::new(); modules],
            violations: Vec::new(),
        }
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// The access mode these modules resolve writes under.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// True if there are no modules.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Load a cell directly (initial-memory placement and remapping).
    pub fn poke(&mut self, module: usize, addr: u64, value: u64) {
        self.cells[module].insert(addr, value);
    }

    /// Read a cell directly (verification and remapping).
    pub fn peek(&self, module: usize, addr: u64) -> u64 {
        self.cells[module].get(&addr).copied().unwrap_or(0)
    }

    /// Drain all cells of all modules (rehash remapping).
    pub fn drain_cells(&mut self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for m in &mut self.cells {
            out.extend(m.drain());
        }
        out
    }

    /// Buffer a request that arrived at `module` during the routing phase.
    pub fn buffer(&mut self, module: usize, req: ModuleRequest) {
        self.batches[module].push(req);
    }

    /// Serve every module's batch: reads first (pre-write values), then
    /// writes (CRCW resolution). Returns the read results as
    /// `(module, addr, trail, value)` and the busiest module's batch size
    /// (the serial service time charged to this PRAM step).
    pub fn serve_batches(&mut self) -> (Vec<(usize, u64, u32, u64)>, u32) {
        let mut reads = Vec::new();
        let mut busiest = 0u32;
        for module in 0..self.cells.len() {
            let batch = std::mem::take(&mut self.batches[module]);
            busiest = busiest.max(batch.len() as u32);
            // Read phase.
            for req in &batch {
                if let ModuleRequest::Read { addr, trail } = *req {
                    let value = self.cells[module].get(&addr).copied().unwrap_or(0);
                    reads.push((module, addr, trail, value));
                }
            }
            // Write phase: group by address, resolve by policy.
            let mut writes: HashMap<u64, Vec<(usize, u64)>> = HashMap::new();
            for req in &batch {
                if let ModuleRequest::Write { addr, value, proc } = *req {
                    writes.entry(addr).or_default().push((proc, value));
                }
            }
            let mut addrs: Vec<u64> = writes.keys().copied().collect();
            addrs.sort_unstable();
            for addr in addrs {
                let winners = &writes[&addr];
                let value = resolve_write(self.mode, addr, winners, &mut self.violations);
                self.cells[module].insert(addr, value);
            }
        }
        (reads, busiest)
    }

    /// Discard all buffered (unserved) requests — used when a routing
    /// overrun triggers a rehash and the PRAM step restarts from scratch.
    pub fn clear_batches(&mut self) {
        for b in &mut self.batches {
            b.clear();
        }
    }

    /// Access violations recorded so far (CRCW-Common mismatches).
    pub fn violations(&self) -> &[AccessViolation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnpram_pram::model::WritePolicy;

    #[test]
    fn batch_reads_see_pre_write_values() {
        let mut ma = ModuleArray::new(2, AccessMode::Crew);
        ma.poke(0, 10, 111);
        ma.buffer(0, ModuleRequest::Read { addr: 10, trail: 0 });
        ma.buffer(
            0,
            ModuleRequest::Write {
                addr: 10,
                value: 222,
                proc: 3,
            },
        );
        let (reads, busiest) = ma.serve_batches();
        assert_eq!(reads, vec![(0, 10, 0, 111)]);
        assert_eq!(busiest, 2);
        assert_eq!(ma.peek(0, 10), 222);
    }

    #[test]
    fn write_resolution_matches_policy() {
        let mut ma = ModuleArray::new(1, AccessMode::Crcw(WritePolicy::Sum));
        for proc in 0..4 {
            ma.buffer(
                0,
                ModuleRequest::Write {
                    addr: 5,
                    value: proc as u64 + 1,
                    proc,
                },
            );
        }
        ma.serve_batches();
        assert_eq!(ma.peek(0, 5), 10);
        assert!(ma.violations().is_empty());
    }

    #[test]
    fn common_mismatch_recorded() {
        let mut ma = ModuleArray::new(1, AccessMode::Crcw(WritePolicy::Common));
        ma.buffer(
            0,
            ModuleRequest::Write {
                addr: 1,
                value: 7,
                proc: 0,
            },
        );
        ma.buffer(
            0,
            ModuleRequest::Write {
                addr: 1,
                value: 8,
                proc: 1,
            },
        );
        ma.serve_batches();
        assert_eq!(ma.violations().len(), 1);
    }

    #[test]
    fn drain_cells_roundtrip() {
        let mut ma = ModuleArray::new(3, AccessMode::Erew);
        ma.poke(0, 1, 10);
        ma.poke(1, 2, 20);
        ma.poke(2, 3, 30);
        let mut cells = ma.drain_cells();
        cells.sort_unstable();
        assert_eq!(cells, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(ma.peek(0, 1), 0);
    }

    #[test]
    fn unwritten_cells_read_zero() {
        let mut ma = ModuleArray::new(1, AccessMode::Erew);
        ma.buffer(0, ModuleRequest::Read { addr: 99, trail: 3 });
        let (reads, _) = ma.serve_batches();
        assert_eq!(reads, vec![(0, 99, 3, 0)]);
    }
}
