//! Deterministic replicated-memory emulation — the baseline the paper's
//! randomized-hashing scheme is positioned against (reference \[3\]:
//! Alt, Hagerup, Mehlhorn & Preparata, *Deterministic Simulation of
//! Idealized Parallel Computers on More Realistic Ones*, SIAM J. Comput.
//! 1987).
//!
//! Idea: avoid hashing's randomness by storing every shared cell in
//! `R = 2c − 1` copies at *fixed* (deterministically placed) modules.
//! A write updates the fixed write quorum (copies `0..c`) and stamps them
//! with the PRAM step number; a read consults any `c` copies and takes
//! the value with the largest stamp. Since any two `c`-subsets of `2c−1`
//! copies intersect, every read sees the latest write.
//!
//! **Simplifications vs. \[3\]** (recorded in DESIGN.md): AHMP place
//! copies via an expander-like bipartite structure and access an
//! *adaptive* majority (protecting against worst-case congestion at the
//! cost of an `O(log N (log log N)…)` mechanism). We use fixed
//! multiplicative-hash placement and fixed quorums (write quorum
//! `{0..c}`, read quorum rotated by address so read load spreads). This
//! preserves exactly the cost structure the comparison needs — `c×`
//! request/reply traffic per access, no rehash escape hatch, fixed
//! placement an adversary could target — while omitting the worst-case
//! machinery. The benches measure the resulting slowdown against the
//! randomized single-copy scheme of Theorems 2.5/2.6.
//!
//! Routing is the same Algorithm 2.1 two-phase traversal used by
//! [`crate::LeveledPramEmulator`] (replies make a fresh forward pass
//! instead of retracing a combining tree — this baseline does not
//! combine).

use crate::config::{EmuReport, EmulatorConfig, StepStats};
use lnpram_math::rng::SeedSeq;
use lnpram_pram::machine::resolve_write;
use lnpram_pram::model::{AccessMode, AccessViolation, MemOp, PramProgram};
use lnpram_routing::DoubledLeveled;
use lnpram_simnet::{Engine, Outbox, Packet, Protocol, SimConfig};
use lnpram_topology::leveled::{Leveled, LeveledNet};
use rand::Rng;
use std::collections::HashMap;

/// Fixed multiplicative-hash constants, one per copy index (odd 64-bit
/// constants in the golden-ratio family; the placement is *deterministic*
/// — the whole point of this baseline — so these are compile-time fixed).
const PLACEMENT_KEYS: [u64; 7] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
    0x9E37_79B9_7F4A_7C55,
    0xC2B2_AE3D_27D4_EB05,
    0x1656_67B1_9E37_79A1,
];

/// One stored replica request buffered at a module during routing.
#[derive(Debug, Clone, Copy)]
enum RepRequest {
    /// Read of storage key `key` on behalf of `proc`.
    Read { key: u64, proc: u32 },
    /// Write of `value` (stamped `version`) to storage key `key` by `proc`.
    Write {
        key: u64,
        value: u64,
        proc: usize,
        version: u64,
    },
}

/// A read reply from a replica batch: `(module, key, proc, value, version)`.
type ReadReply = (usize, u64, u32, u64, u64);

/// Per-module replica storage: cells hold `(value, version)` pairs keyed
/// by `addr·R + copy`, with the same read-before-write batch semantics as
/// [`crate::memory::ModuleArray`].
#[derive(Debug, Clone)]
struct ReplicaStore {
    cells: Vec<HashMap<u64, (u64, u64)>>,
    mode: AccessMode,
    batches: Vec<Vec<RepRequest>>,
    violations: Vec<AccessViolation>,
}

impl ReplicaStore {
    fn new(modules: usize, mode: AccessMode) -> Self {
        ReplicaStore {
            cells: vec![HashMap::new(); modules],
            mode,
            batches: vec![Vec::new(); modules],
            violations: Vec::new(),
        }
    }

    fn poke(&mut self, module: usize, key: u64, value: u64, version: u64) {
        self.cells[module].insert(key, (value, version));
    }

    fn peek(&self, module: usize, key: u64) -> Option<(u64, u64)> {
        self.cells[module].get(&key).copied()
    }

    fn buffer(&mut self, module: usize, req: RepRequest) {
        self.batches[module].push(req);
    }

    fn clear_batches(&mut self) {
        for b in &mut self.batches {
            b.clear();
        }
    }

    /// Serve all batches: reads observe pre-write values, then writes are
    /// resolved per key under the CRCW policy. Returns the read replies as
    /// `(module, key, proc, value, version)` plus the busiest batch size.
    fn serve_batches(&mut self) -> (Vec<ReadReply>, u32) {
        let mut reads = Vec::new();
        let mut busiest = 0u32;
        for module in 0..self.cells.len() {
            let batch = std::mem::take(&mut self.batches[module]);
            busiest = busiest.max(batch.len() as u32);
            for req in &batch {
                if let RepRequest::Read { key, proc } = *req {
                    let (value, version) = self.cells[module].get(&key).copied().unwrap_or((0, 0));
                    reads.push((module, key, proc, value, version));
                }
            }
            let mut writes: HashMap<u64, (u64, Vec<(usize, u64)>)> = HashMap::new();
            for req in &batch {
                if let RepRequest::Write {
                    key,
                    value,
                    proc,
                    version,
                } = *req
                {
                    let e = writes.entry(key).or_insert((version, Vec::new()));
                    e.0 = e.0.max(version);
                    e.1.push((proc, value));
                }
            }
            let mut keys: Vec<u64> = writes.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let (version, winners) = &writes[&key];
                let value = resolve_write(self.mode, key, winners, &mut self.violations);
                self.cells[module].insert(key, (value, *version));
            }
        }
        (reads, busiest)
    }
}

/// The deterministic replicated-memory emulator over a leveled network —
/// the \[3\]-style baseline for Theorems 2.5/2.6.
///
/// ```
/// use lnpram_core::{EmulatorConfig, ReplicatedPramEmulator};
/// use lnpram_pram::model::{AccessMode, MemOp};
/// use lnpram_topology::leveled::RadixButterfly;
///
/// let mut emu = ReplicatedPramEmulator::new(
///     RadixButterfly::new(2, 4), AccessMode::Erew, 64, 3,
///     EmulatorConfig::default());
/// emu.emulate_step(&[MemOp::Write(7, 41)], 0);
/// let reads = emu.emulate_step(&[MemOp::Read(7)], 1);
/// assert_eq!(reads, vec![(0, 41)]);
/// assert_eq!(emu.quorum(), 2); // c = (R+1)/2 packets per access
/// ```
pub struct ReplicatedPramEmulator<L: Leveled + Copy> {
    inner: L,
    /// Number of copies `R = 2c − 1` per cell (odd, ≤ 7).
    copies: usize,
    store: ReplicaStore,
    seq: SeedSeq,
    report: EmuReport,
    address_space: u64,
    /// Forward view of the doubled network (both phases route forward —
    /// this baseline does not retrace combining trees).
    fwd: LeveledNet<DoubledLeveled<L>>,
    /// One persistent engine for both phases, recycled per phase.
    engine: Engine,
}

impl<L: Leveled + Copy> ReplicatedPramEmulator<L> {
    /// Build a baseline emulator storing every cell in `copies = 2c − 1`
    /// replicas (odd, 1 ≤ copies ≤ 7; 1 degenerates to unreplicated
    /// deterministic placement — a useful ablation point).
    pub fn new(
        inner: L,
        mode: AccessMode,
        address_space: u64,
        copies: usize,
        cfg: EmulatorConfig,
    ) -> Self {
        assert!(
            copies >= 1 && copies <= PLACEMENT_KEYS.len(),
            "1 ≤ copies ≤ 7"
        );
        assert!(copies % 2 == 1, "copies must be odd (R = 2c − 1)");
        let width = inner.width();
        let seq = SeedSeq::new(cfg.seed);
        let fwd = LeveledNet::forward(DoubledLeveled::new(inner));
        // No rehash escape hatch: the placement is fixed, so both phases
        // run with an unbounded budget (congestion is simply paid).
        let engine = Engine::new(
            &fwd,
            SimConfig {
                discipline: cfg.discipline,
                max_steps: u32::MAX,
                ..Default::default()
            },
        );
        ReplicatedPramEmulator {
            inner,
            copies,
            store: ReplicaStore::new(width, mode),
            seq,
            report: EmuReport::default(),
            address_space,
            fwd,
            engine,
        }
    }

    /// Number of processors (= memory modules = column width).
    pub fn processors(&self) -> usize {
        self.inner.width()
    }

    /// Quorum size `c = (R + 1) / 2`.
    pub fn quorum(&self) -> usize {
        self.copies.div_ceil(2)
    }

    /// Per-phase path length `2ℓ` (the Õ(ℓ) normalisation constant).
    pub fn diameter(&self) -> usize {
        2 * self.inner.levels()
    }

    /// The fixed module of copy `j` of `addr`.
    pub fn copy_module(&self, addr: u64, j: usize) -> usize {
        debug_assert!(j < self.copies);
        let mixed = (addr.wrapping_add(1)).wrapping_mul(PLACEMENT_KEYS[j]);
        ((mixed >> 17) % self.processors() as u64) as usize
    }

    /// Storage key of copy `j` of `addr` (distinct per copy).
    fn storage_key(&self, addr: u64, j: usize) -> u64 {
        addr * self.copies as u64 + j as u64
    }

    /// The write quorum: copies `0..c`.
    fn write_quorum(&self) -> std::ops::Range<usize> {
        0..self.quorum()
    }

    /// The read quorum: `c` copy indices rotated by the address, so read
    /// load spreads over all `2c − 1` copies while still intersecting the
    /// write quorum (any two `c`-subsets of `2c − 1` intersect).
    fn read_quorum(&self, addr: u64) -> impl Iterator<Item = usize> {
        let r = self.copies;
        let c = self.quorum();
        let start = (addr % r as u64) as usize;
        (0..c).map(move |i| (start + i) % r)
    }

    /// Authoritative value of `addr`: max-version copy over all replicas.
    pub fn peek(&self, addr: u64) -> u64 {
        (0..self.copies)
            .filter_map(|j| {
                self.store
                    .peek(self.copy_module(addr, j), self.storage_key(addr, j))
            })
            .max_by_key(|&(_, version)| version)
            .map_or(0, |(value, _)| value)
    }

    /// Full memory image for oracle diffing.
    pub fn memory_image(&self, address_space: u64) -> Vec<u64> {
        (0..address_space).map(|a| self.peek(a)).collect()
    }

    /// The accumulated report.
    pub fn report(&self) -> &EmuReport {
        &self.report
    }

    /// Run `prog` to completion, mirroring [`lnpram_pram::PramMachine`].
    pub fn run_program<P: PramProgram>(&mut self, prog: &mut P, max_steps: usize) -> EmuReport {
        assert!(prog.processors() <= self.processors());
        assert!(prog.address_space() <= self.address_space);
        for (addr, val) in prog.initial_memory() {
            for j in 0..self.copies {
                let m = self.copy_module(addr, j);
                let key = self.storage_key(addr, j);
                self.store.poke(m, key, val, 0);
            }
        }
        let p = prog.processors();
        let mut last_read: Vec<Option<u64>> = vec![None; p];
        for step in 0..max_steps {
            let ops: Vec<MemOp> = (0..p).map(|i| prog.op(i, step, last_read[i])).collect();
            if ops.iter().all(|o| matches!(o, MemOp::Halt)) {
                break;
            }
            let reads = self.emulate_step(&ops, step as u64);
            for (proc, value) in reads {
                last_read[proc] = Some(value);
            }
            self.report.pram_steps += 1;
        }
        self.report.clone()
    }

    /// Emulate one PRAM step; returns `(proc, value)` for every read.
    ///
    /// Unlike the randomized emulator there is no rehash escape: the
    /// placement is fixed, so the routing budget is unbounded and any
    /// congestion is simply paid (that is the baseline's deal).
    pub fn emulate_step(&mut self, ops: &[MemOp], step_label: u64) -> Vec<(usize, u64)> {
        // Versions start at 1 so step 0's writes beat initial memory (0).
        let version = step_label + 1;
        let step_seq = self.seq.child(1).child(step_label);
        let width = self.inner.width();
        self.store.clear_batches();

        struct Issue {
            proc: usize,
            module: u32,
            key: u64,
            write: Option<u64>,
        }
        let mut issues: Vec<Issue> = Vec::new();
        let mut reading: Vec<Option<u64>> = vec![None; ops.len()];
        for (proc, op) in ops.iter().enumerate() {
            match *op {
                MemOp::Read(addr) => {
                    reading[proc] = Some(addr);
                    for j in self.read_quorum(addr) {
                        issues.push(Issue {
                            proc,
                            module: self.copy_module(addr, j) as u32,
                            key: self.storage_key(addr, j),
                            write: None,
                        });
                    }
                }
                MemOp::Write(addr, v) => {
                    for j in self.write_quorum() {
                        issues.push(Issue {
                            proc,
                            module: self.copy_module(addr, j) as u32,
                            key: self.storage_key(addr, j),
                            write: Some(v),
                        });
                    }
                }
                MemOp::None | MemOp::Halt => {}
            }
        }
        let mut stats = StepStats {
            requests: issues.len() as u32,
            ..Default::default()
        };
        if issues.is_empty() {
            self.report.steps.push(stats);
            return Vec::new();
        }

        // ---- Request phase ----
        self.engine.reset();
        let mut via_rng = step_seq.child(0).rng();
        let mut write_vals: HashMap<u32, (u64, usize)> = HashMap::new();
        for (id, issue) in issues.iter().enumerate() {
            let via = via_rng.gen_range(0..width) as u32;
            let mut pkt = Packet::new(id as u32, issue.proc as u32, issue.module)
                .with_via(via)
                .with_tag(issue.key);
            pkt.phase = u8::from(issue.write.is_some());
            if let Some(v) = issue.write {
                write_vals.insert(id as u32, (v, issue.proc));
            }
            self.engine.inject(self.fwd.node_id(0, issue.proc), pkt);
        }
        {
            let Self {
                fwd, store, engine, ..
            } = self;
            let mut proto = ReplicaRequestProtocol {
                net: &*fwd,
                store,
                write_vals: &write_vals,
                version,
            };
            let out = engine.run(&mut proto);
            debug_assert!(out.completed);
            stats.request_steps = out.metrics.routing_time;
            stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);
        }

        // ---- Service ----
        let (replies, busiest) = self.store.serve_batches();
        stats.service_steps = busiest;

        // ---- Reply phase (fresh forward pass, module column → procs) ----
        let mut deliveries: Vec<(usize, u64)> = Vec::new();
        if !replies.is_empty() {
            self.engine.reset();
            let mut via_rng = step_seq.child(1).rng();
            let mut values: HashMap<(u64, u32), (u64, u64)> = HashMap::new();
            for (i, &(module, key, proc, value, ver)) in replies.iter().enumerate() {
                values.insert((key, proc), (value, ver));
                let via = via_rng.gen_range(0..width) as u32;
                let pkt = Packet::new(i as u32, module as u32, proc)
                    .with_via(via)
                    .with_tag(key);
                self.engine.inject(self.fwd.node_id(0, module), pkt);
            }
            let mut raw: Vec<(usize, u64, u64)> = Vec::new();
            {
                let Self { fwd, engine, .. } = self;
                let mut proto = ReplicaReplyProtocol {
                    net: &*fwd,
                    values: &values,
                    raw: &mut raw,
                };
                let out = engine.run(&mut proto);
                debug_assert!(out.completed);
                stats.reply_steps = out.metrics.routing_time;
                stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);
            }
            // Majority resolution: per reading processor, the max-version
            // reply wins (quorum intersection guarantees it is the latest).
            let mut best: HashMap<usize, (u64, u64)> = HashMap::new();
            for (proc, value, ver) in raw {
                let e = best.entry(proc).or_insert((value, ver));
                if ver > e.1 {
                    *e = (value, ver);
                }
            }
            let mut procs: Vec<usize> = best.keys().copied().collect();
            procs.sort_unstable();
            for proc in procs {
                debug_assert!(reading[proc].is_some());
                deliveries.push((proc, best[&proc].0));
            }
        }

        self.report.steps.push(stats);
        deliveries
    }
}

/// Request routing: Algorithm 2.1 movement; buffer at the module column.
struct ReplicaRequestProtocol<'a, L: Leveled> {
    net: &'a LeveledNet<DoubledLeveled<L>>,
    store: &'a mut ReplicaStore,
    write_vals: &'a HashMap<u32, (u64, usize)>,
    version: u64,
}

impl<L: Leveled> Protocol for ReplicaRequestProtocol<'_, L> {
    fn on_packet(&mut self, node: usize, mut pkt: Packet, _step: u32, out: &mut Outbox) {
        let lv = self.net.leveled();
        let half = lv.levels() / 2;
        let (col, idx) = self.net.split(node);
        if col == lv.levels() {
            let key = pkt.tag;
            if pkt.phase == 1 {
                let (value, proc) = self.write_vals[&pkt.id];
                self.store.buffer(
                    idx,
                    RepRequest::Write {
                        key,
                        value,
                        proc,
                        version: self.version,
                    },
                );
            } else {
                self.store
                    .buffer(idx, RepRequest::Read { key, proc: pkt.src });
            }
            out.deliver(pkt);
            return;
        }
        let target = if col < half { pkt.via } else { pkt.dest } as usize;
        let digit = lv.digit_toward(col, idx, target);
        pkt.prev = node as u32;
        out.send(digit, pkt);
    }
}

/// Reply routing: plain Algorithm 2.1 delivery back to the processors.
struct ReplicaReplyProtocol<'a, L: Leveled> {
    net: &'a LeveledNet<DoubledLeveled<L>>,
    values: &'a HashMap<(u64, u32), (u64, u64)>,
    raw: &'a mut Vec<(usize, u64, u64)>,
}

impl<L: Leveled> Protocol for ReplicaReplyProtocol<'_, L> {
    fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
        let lv = self.net.leveled();
        let half = lv.levels() / 2;
        let (col, idx) = self.net.split(node);
        if col == lv.levels() {
            debug_assert_eq!(idx, pkt.dest as usize);
            let (value, ver) = self.values[&(pkt.tag, pkt.dest)];
            self.raw.push((idx, value, ver));
            out.deliver(pkt);
            return;
        }
        let target = if col < half { pkt.via } else { pkt.dest } as usize;
        let digit = lv.digit_toward(col, idx, target);
        out.send(digit, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeveledPramEmulator;
    use lnpram_pram::machine::PramMachine;
    use lnpram_pram::model::WritePolicy;
    use lnpram_pram::programs::{Histogram, PermutationTraffic, PrefixSum, ReductionMax};
    use lnpram_topology::leveled::RadixButterfly;

    #[test]
    fn quorum_arithmetic() {
        let inner = RadixButterfly::new(2, 3);
        for copies in [1usize, 3, 5, 7] {
            let emu = ReplicatedPramEmulator::new(
                inner,
                AccessMode::Erew,
                64,
                copies,
                EmulatorConfig::default(),
            );
            assert_eq!(emu.quorum(), copies.div_ceil(2));
            // Any read quorum must intersect the write quorum {0..c}.
            for addr in 0..20u64 {
                let c = emu.quorum();
                assert!(
                    emu.read_quorum(addr).any(|j| j < c),
                    "addr {addr}, copies {copies}: quorums disjoint"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_copy_count_rejected() {
        let inner = RadixButterfly::new(2, 3);
        let _ =
            ReplicatedPramEmulator::new(inner, AccessMode::Erew, 64, 2, EmulatorConfig::default());
    }

    #[test]
    fn copy_placement_is_deterministic_and_in_range() {
        let inner = RadixButterfly::new(2, 4);
        let emu = ReplicatedPramEmulator::new(
            inner,
            AccessMode::Erew,
            1 << 20,
            3,
            EmulatorConfig::default(),
        );
        for addr in 0..100u64 {
            for j in 0..3 {
                let m = emu.copy_module(addr, j);
                assert!(m < emu.processors());
                assert_eq!(m, emu.copy_module(addr, j), "must be a pure function");
            }
        }
    }

    #[test]
    fn prefix_sum_matches_reference() {
        let values: Vec<u64> = (0..8).map(|i| i * 2 + 1).collect();
        let inner = RadixButterfly::new(2, 3);
        let mut prog = PrefixSum::new(values.clone());
        let space = prog.address_space();
        let mut emu = ReplicatedPramEmulator::new(
            inner,
            AccessMode::Erew,
            space,
            3,
            EmulatorConfig::default(),
        );
        emu.run_program(&mut prog, 100_000);
        let mut oracle = PramMachine::new(space, AccessMode::Erew);
        oracle.run(&mut PrefixSum::new(values), 100_000);
        assert_eq!(emu.memory_image(space), oracle.memory());
    }

    #[test]
    fn reduction_matches_reference_across_copy_counts() {
        let values: Vec<u64> = (0..16).map(|i| (i * 31 + 7) % 101).collect();
        let inner = RadixButterfly::new(2, 3);
        for copies in [1usize, 3, 5] {
            let mut prog = ReductionMax::new(values.clone());
            let space = prog.address_space();
            let mut emu = ReplicatedPramEmulator::new(
                inner,
                AccessMode::Erew,
                space,
                copies,
                EmulatorConfig::default(),
            );
            emu.run_program(&mut prog, 100_000);
            assert_eq!(
                emu.peek(0),
                *values.iter().max().unwrap(),
                "copies = {copies}"
            );
        }
    }

    #[test]
    fn crcw_histogram_matches_reference() {
        let inner = RadixButterfly::new(2, 4);
        let inputs: Vec<u64> = (0..16).map(|i| (i * 7) % 5).collect();
        let mut prog = Histogram::new(inputs.clone(), 5);
        let space = prog.address_space();
        let mode = AccessMode::Crcw(WritePolicy::Sum);
        let mut emu = ReplicatedPramEmulator::new(inner, mode, space, 3, EmulatorConfig::default());
        emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(space)));
        let mut oracle = PramMachine::new(space, mode);
        oracle.run(&mut Histogram::new(inputs, 5), 1000);
        assert_eq!(emu.memory_image(space), oracle.memory());
    }

    #[test]
    fn stale_copies_never_win() {
        // Write addr twice in different steps; the write quorum is fixed,
        // so copies outside it keep version 0 — the read must still see
        // the second write through max-version resolution.
        let inner = RadixButterfly::new(2, 3);
        let mut emu =
            ReplicatedPramEmulator::new(inner, AccessMode::Erew, 16, 3, EmulatorConfig::default());
        emu.emulate_step(&[MemOp::Write(5, 100)], 0);
        emu.emulate_step(&[MemOp::Write(5, 200)], 1);
        let reads = emu.emulate_step(&[MemOp::Read(5)], 2);
        assert_eq!(reads, vec![(0, 200)]);
        assert_eq!(emu.peek(5), 200);
    }

    #[test]
    fn replication_multiplies_traffic_by_quorum() {
        // c× packets per access is the baseline's fundamental cost.
        let inner = RadixButterfly::new(2, 4);
        let perm: Vec<usize> = (0..16).map(|i| (i * 5 + 3) % 16).collect();
        let run = |copies: usize| {
            let mut prog = PermutationTraffic::new(perm.clone(), 2);
            let mut emu = ReplicatedPramEmulator::new(
                inner,
                AccessMode::Erew,
                prog.address_space(),
                copies,
                EmulatorConfig::default(),
            );
            let rep = emu.run_program(&mut prog, 1000);
            rep.steps.iter().map(|s| u64::from(s.requests)).sum::<u64>()
        };
        let one = run(1);
        let three = run(3);
        let five = run(5);
        assert_eq!(three, 2 * one, "c = 2 at R = 3");
        assert_eq!(five, 3 * one, "c = 3 at R = 5");
    }

    #[test]
    fn slower_than_randomized_hashing() {
        // The comparison the paper implies: deterministic replication pays
        // a constant-factor traffic/time overhead per step versus the
        // randomized single-copy scheme.
        let inner = RadixButterfly::new(2, 5); // 32 processors
        let perm: Vec<usize> = (0..32).map(|i| (i * 11 + 5) % 32).collect();
        let mut prog = PermutationTraffic::new(perm.clone(), 4);
        let mut rep_emu = ReplicatedPramEmulator::new(
            inner,
            AccessMode::Erew,
            prog.address_space(),
            3,
            EmulatorConfig::default(),
        );
        let rep_report = rep_emu.run_program(&mut prog, 1000);
        let mut prog2 = PermutationTraffic::new(perm, 4);
        let mut hash_emu = LeveledPramEmulator::new(
            inner,
            AccessMode::Erew,
            prog2.address_space(),
            EmulatorConfig::default(),
        );
        let hash_report = hash_emu.run_program(&mut prog2, 1000);
        assert!(
            rep_report.mean_step_time() > hash_report.mean_step_time(),
            "replicated ({:.1}) should cost more than hashed ({:.1})",
            rep_report.mean_step_time(),
            hash_report.mean_step_time()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let inner = RadixButterfly::new(2, 3);
        let run = || {
            let perm: Vec<usize> = (0..8).map(|i| (i * 3 + 1) % 8).collect();
            let mut prog = PermutationTraffic::new(perm, 2);
            let mut emu = ReplicatedPramEmulator::new(
                inner,
                AccessMode::Erew,
                prog.address_space(),
                3,
                EmulatorConfig {
                    seed: 21,
                    ..Default::default()
                },
            );
            let rep = emu.run_program(&mut prog, 100);
            (rep.network_steps(), emu.memory_image(8))
        };
        assert_eq!(run(), run());
    }
}
