//! CRCW packet combining: pending tables with reply fan-out.
//!
//! Theorem 2.6 upgrades the EREW emulation to CRCW by "combining all
//! incoming packets having the same destination into one packet and
//! storing log d direction bits … to make sure each requesting processor
//! receives a reply" (footnote 3: any number of same-destination arrivals
//! combine in unit time).
//!
//! We realise this with a *pending table* at every node, keyed by
//! `(address, trail)`: the first read request for a key is forwarded and
//! opens an entry; subsequent requests for the same key are absorbed,
//! appending their arrival direction to the entry's fan-out list (those
//! are the direction bits). The read reply retraces the request tree in
//! reverse: at each node it pops the entry and emits one copy per
//! recorded direction, plus a local delivery if this node's own processor
//! requested the cell.
//!
//! Correctness rests on the routes being *memoryless and convergent*:
//! once two requests for the same key meet at a node, their remaining
//! paths coincide (true for the unique-path phase of leveled networks,
//! for the greedy star route, and for the deterministic legs of the mesh
//! algorithm), so the absorbed request's reply is guaranteed to pass back
//! through the absorbing node.
//!
//! The `trail` component of the key is 0 when combining is enabled; with
//! combining disabled (ablation A4) it is the requesting processor id, so
//! every request keeps a private trail and nothing merges.

use std::collections::HashMap;

/// Where a pending request came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The processor co-located with this node issued it.
    Local,
    /// It arrived from this neighboring node.
    FromNode(u32),
    /// It continues another pending trail *at this same node* — used where
    /// a private random-phase trail joins the shared convergent-phase tree
    /// (the star/mesh emulators; see the deadlock discussion below). When
    /// the reply consumes this entry it immediately processes the chained
    /// trail's entry at the same node.
    Chain(u32),
}

/// One pending read: the fan-out targets awaiting the reply.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PendingEntry {
    /// Neighbor nodes to copy the reply to.
    pub fanout: Vec<u32>,
    /// Trails to continue at this same node (see [`Source::Chain`]).
    pub chains: Vec<u32>,
    /// Deliver to this node's own processor too?
    pub local: bool,
}

/// Pending-read tables for every node of the emulating network.
#[derive(Debug, Clone)]
pub struct PendingTables {
    tables: Vec<HashMap<(u64, u32), PendingEntry>>,
    combined: u32,
}

impl PendingTables {
    /// Tables for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        PendingTables {
            tables: vec![HashMap::new(); nodes],
            combined: 0,
        }
    }

    /// Register a read request for `(addr, trail)` arriving at `node` from
    /// `source`. Returns `true` when this is the first request for the key
    /// here — the caller must forward the packet. `false` means absorbed
    /// (a combining event).
    pub fn register(&mut self, node: usize, addr: u64, trail: u32, source: Source) -> bool {
        let entry = self.tables[node].entry((addr, trail)).or_default();
        let first = entry.fanout.is_empty() && entry.chains.is_empty() && !entry.local;
        match source {
            Source::Local => {
                debug_assert!(!entry.local, "one op per processor per step");
                entry.local = true;
            }
            Source::FromNode(u) => entry.fanout.push(u),
            Source::Chain(t) => entry.chains.push(t),
        }
        if !first {
            self.combined += 1;
        }
        first
    }

    /// Remove and return the entry for `(addr, trail)` at `node` — called
    /// when the reply passes through. Panics if no entry exists (a reply
    /// must always follow a registered request path).
    pub fn take(&mut self, node: usize, addr: u64, trail: u32) -> PendingEntry {
        self.tables[node].remove(&(addr, trail)).unwrap_or_else(|| {
            panic!("reply at node {node} for ({addr},{trail}) with no pending entry")
        })
    }

    /// Combining events since construction or the last [`Self::reset`].
    pub fn combined(&self) -> u32 {
        self.combined
    }

    /// Clear all entries and the combining counter (start of a PRAM step
    /// or after a rehash).
    pub fn reset(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
        self.combined = 0;
    }

    /// Are all tables empty? (After a completed reply phase they must be —
    /// asserted by the emulators in debug builds.)
    pub fn all_clear(&self) -> bool {
        self.tables.iter().all(HashMap::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_registration_forwards_rest_absorb() {
        let mut pt = PendingTables::new(4);
        assert!(pt.register(2, 100, 0, Source::Local));
        assert!(!pt.register(2, 100, 0, Source::FromNode(1)));
        assert!(!pt.register(2, 100, 0, Source::FromNode(3)));
        assert_eq!(pt.combined(), 2);
        let e = pt.take(2, 100, 0);
        assert!(e.local);
        assert_eq!(e.fanout, vec![1, 3]);
        assert!(pt.all_clear());
    }

    #[test]
    fn distinct_trails_do_not_merge() {
        let mut pt = PendingTables::new(2);
        assert!(pt.register(0, 100, 7, Source::Local));
        assert!(pt.register(0, 100, 8, Source::FromNode(1)));
        assert_eq!(pt.combined(), 0);
    }

    #[test]
    fn distinct_addresses_do_not_merge() {
        let mut pt = PendingTables::new(2);
        assert!(pt.register(1, 5, 0, Source::Local));
        assert!(pt.register(1, 6, 0, Source::Local));
        assert_eq!(pt.combined(), 0);
    }

    #[test]
    fn per_node_isolation() {
        let mut pt = PendingTables::new(3);
        assert!(pt.register(0, 9, 0, Source::Local));
        assert!(pt.register(1, 9, 0, Source::FromNode(0)));
        assert_eq!(pt.combined(), 0);
        assert_eq!(pt.take(1, 9, 0).fanout, vec![0]);
        assert!(!pt.all_clear());
        pt.take(0, 9, 0);
        assert!(pt.all_clear());
    }

    #[test]
    fn chained_trails_count_as_combining() {
        let mut pt = PendingTables::new(2);
        assert!(pt.register(0, 4, 0, Source::Chain(7)));
        assert!(!pt.register(0, 4, 0, Source::Chain(9)));
        assert_eq!(pt.combined(), 1);
        let e = pt.take(0, 4, 0);
        assert_eq!(e.chains, vec![7, 9]);
        assert!(e.fanout.is_empty());
    }

    #[test]
    #[should_panic(expected = "no pending entry")]
    fn reply_without_request_panics() {
        let mut pt = PendingTables::new(1);
        pt.take(0, 1, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pt = PendingTables::new(2);
        pt.register(0, 1, 0, Source::Local);
        pt.register(0, 1, 0, Source::FromNode(1));
        pt.reset();
        assert!(pt.all_clear());
        assert_eq!(pt.combined(), 0);
    }
}
