//! Corollaries 2.3 and 2.5: PRAM emulation on the physical n-star graph.
//!
//! Every node of the n-star hosts one processor *and* one memory module
//! (the paper's parallel model). A PRAM step routes requests by
//! Algorithm 2.2 — random intermediate node along the canonical oblivious
//! path, then on to module `h(addr)` — and read replies retrace the
//! request trees backward (SWAP edges are involutions, so the reverse
//! port equals the forward port and the star needs no separate reply
//! network).
//!
//! **Combining safety.** On the leveled networks the request paths move
//! strictly forward by column, so pending entries can never form a cycle.
//! On the star, two packets travelling toward *different random
//! intermediates* could each get absorbed into the other's trail —
//! a deadlock. The canonical phase-2 route, however, decreases the
//! distance to the module by exactly one per hop, so phase-2 trails are
//! acyclic. We therefore keep phase-1 trails *private* (keyed by
//! requester) and let them join the shared phase-2 tree at the
//! intermediate node through a [`Source::Chain`] link; the reply unwinds
//! the shared tree and then each private trail. Combining across
//! requesters happens exactly where it is safe — the convergent phase —
//! which is also where the hot-spot traffic concentrates.

use crate::combining::{PendingTables, Source};
use crate::config::{EmuReport, EmulatorConfig, StepStats};
use crate::memory::{ModuleArray, ModuleRequest};
use lnpram_hash::{HashFamily, PolyHash};
use lnpram_math::rng::SeedSeq;
use lnpram_pram::model::{AccessMode, MemOp, PramProgram};
use lnpram_routing::star::star_engine;
use lnpram_shard::AnyEngine;
use lnpram_simnet::{Outbox, Packet, Protocol, SimConfig};
use lnpram_topology::{Network, StarGraph};
use rand::Rng;
use std::collections::HashMap;

/// The PRAM emulator on the n-star graph (Corollaries 2.3/2.5).
pub struct StarPramEmulator {
    star: StarGraph,
    cfg: EmulatorConfig,
    family: HashFamily,
    hash: PolyHash,
    modules: ModuleArray,
    tables: PendingTables,
    seq: SeedSeq,
    hash_epoch: u64,
    report: EmuReport,
    /// One persistent engine serves both phases (the star is its own
    /// reply network); recycled with `reset` per phase. Serial or
    /// sharded (greedy edge-cut — the star has no level/row structure)
    /// per [`EmulatorConfig::shards`].
    engine: AnyEngine,
}

impl StarPramEmulator {
    /// Emulator on the n-star for programs over `address_space` cells.
    pub fn new(n: usize, mode: AccessMode, address_space: u64, cfg: EmulatorConfig) -> Self {
        let star = StarGraph::new(n);
        let family = match cfg.hash_degree_override {
            Some(s_deg) => HashFamily::new(address_space, star.num_nodes() as u64, s_deg.max(1)),
            None => HashFamily::for_diameter(
                address_space,
                star.num_nodes() as u64,
                star.diameter().max(1),
                cfg.hash_degree_factor.max(1),
            ),
        };
        let seq = SeedSeq::new(cfg.seed);
        let hash = family.sample(&mut seq.child(0).rng());
        // Same construction as `StarRoutingSession` (greedy edge-cut on
        // the sharded path), built once and recycled per phase.
        let engine = star_engine(
            &star,
            SimConfig {
                discipline: cfg.discipline,
                shards: cfg.shards,
                ..Default::default()
            },
        );
        StarPramEmulator {
            star,
            cfg,
            family,
            hash,
            modules: ModuleArray::new(star.num_nodes(), mode),
            tables: PendingTables::new(star.num_nodes()),
            seq,
            hash_epoch: 0,
            report: EmuReport::default(),
            engine,
        }
    }

    /// Number of processors (= modules = n!).
    pub fn processors(&self) -> usize {
        self.star.num_nodes()
    }

    /// Star-graph diameter `⌊3(n−1)/2⌋` — the Õ(n) normalisation.
    pub fn diameter(&self) -> usize {
        self.star.diameter()
    }

    /// Module owning `addr` under the current hash.
    pub fn module_of(&self, addr: u64) -> usize {
        self.hash.eval(addr) as usize
    }

    /// Direct read of the emulated memory.
    pub fn peek(&self, addr: u64) -> u64 {
        self.modules.peek(self.module_of(addr), addr)
    }

    /// Full memory image for oracle diffing.
    pub fn memory_image(&self, address_space: u64) -> Vec<u64> {
        (0..address_space).map(|a| self.peek(a)).collect()
    }

    /// The accumulated report.
    pub fn report(&self) -> &EmuReport {
        &self.report
    }

    /// Run `prog` to completion, mirroring the reference machine.
    pub fn run_program<P: PramProgram>(&mut self, prog: &mut P, max_steps: usize) -> EmuReport {
        assert!(prog.processors() <= self.processors());
        assert!(prog.address_space() <= self.family.address_space);
        for (addr, val) in prog.initial_memory() {
            let m = self.module_of(addr);
            self.modules.poke(m, addr, val);
        }
        let p = prog.processors();
        let mut last_read: Vec<Option<u64>> = vec![None; p];
        for step in 0..max_steps {
            let ops: Vec<MemOp> = (0..p).map(|i| prog.op(i, step, last_read[i])).collect();
            if ops.iter().all(|o| matches!(o, MemOp::Halt)) {
                break;
            }
            let reads = self.emulate_step(&ops, step as u64);
            for (proc, value) in reads {
                last_read[proc] = Some(value);
            }
            self.report.pram_steps += 1;
        }
        self.report.clone()
    }

    /// Emulate one PRAM step; returns `(proc, value)` per read.
    pub fn emulate_step(&mut self, ops: &[MemOp], step_label: u64) -> Vec<(usize, u64)> {
        #[derive(Clone, Copy)]
        struct Req {
            proc: usize,
            addr: u64,
            write: Option<u64>,
        }
        let requests: Vec<Req> = ops
            .iter()
            .enumerate()
            .filter_map(|(proc, op)| match *op {
                MemOp::Read(addr) => Some(Req {
                    proc,
                    addr,
                    write: None,
                }),
                MemOp::Write(addr, v) => Some(Req {
                    proc,
                    addr,
                    write: Some(v),
                }),
                _ => None,
            })
            .collect();
        let mut stats = StepStats {
            requests: requests.len() as u32,
            ..Default::default()
        };
        if requests.is_empty() {
            self.report.steps.push(stats);
            return Vec::new();
        }

        let step_seq = self.seq.child(1).child(step_label);
        let mut attempt = 0u32;
        loop {
            // Request path length ≤ 2×diameter (via + dest legs).
            let budget =
                self.cfg.budget_factor * 2 * self.diameter() as u32 * (1 << attempt.min(8));
            let attempt_seq = step_seq.child(attempt as u64);
            self.tables.reset();
            self.modules.clear_batches();

            // ---- Request phase (Algorithm 2.2 + combining) ----
            self.engine.reset();
            self.engine.set_max_steps(budget);
            let mut via_rng = attempt_seq.child(0).rng();
            let mut write_vals: HashMap<u32, (u64, usize)> = HashMap::new();
            for (id, req) in requests.iter().enumerate() {
                let module = self.module_of(req.addr) as u32;
                let via = via_rng.gen_range(0..self.processors()) as u32;
                let mut pkt = Packet::new(id as u32, req.proc as u32, module)
                    .with_via(via)
                    .with_tag(req.addr);
                pkt.hop = u8::from(req.write.is_some()); // request-kind flag
                if let Some(v) = req.write {
                    write_vals.insert(id as u32, (v, req.proc));
                }
                self.engine.inject(req.proc, pkt);
            }
            {
                let Self {
                    star,
                    tables,
                    modules,
                    engine,
                    ..
                } = self;
                let mut proto = StarRequestProtocol {
                    star: *star,
                    tables,
                    modules,
                    write_vals: &write_vals,
                    combining: self.cfg.combining,
                };
                let out = engine.run(&mut proto);
                if !out.completed {
                    attempt += 1;
                    assert!(
                        attempt <= self.cfg.max_rehashes,
                        "exceeded max_rehashes on the star"
                    );
                    self.rehash(&mut stats);
                    continue;
                }
                stats.request_steps = out.metrics.routing_time;
                stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);
            }
            stats.combined = self.tables.combined();

            // ---- Service ----
            let (reads, busiest) = self.modules.serve_batches();
            stats.service_steps = busiest;

            // ---- Reply phase (retrace trees; SWAP ports are involutions) ----
            let mut deliveries: Vec<(usize, u64)> = Vec::new();
            if !reads.is_empty() {
                self.engine.reset();
                self.engine.set_max_steps(u32::MAX);
                let mut read_values: HashMap<u64, u64> = HashMap::new();
                for &(module, addr, trail, value) in &reads {
                    read_values.insert(addr, value);
                    let mut pkt = Packet::new(0, 0, 0).with_tag(addr);
                    pkt.via = trail;
                    self.engine.inject(module, pkt);
                }
                let Self {
                    star,
                    tables,
                    engine,
                    ..
                } = self;
                let mut proto = StarReplyProtocol {
                    star: *star,
                    tables,
                    read_values: &read_values,
                    deliveries: &mut deliveries,
                };
                let out = engine.run(&mut proto);
                debug_assert!(out.completed);
                stats.reply_steps = out.metrics.routing_time;
                stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);
            }
            debug_assert!(self.tables.all_clear(), "unconsumed pending entries");

            self.report.steps.push(stats);
            return deliveries;
        }
    }

    fn rehash(&mut self, stats: &mut StepStats) {
        self.hash_epoch += 1;
        self.hash = self
            .family
            .sample(&mut self.seq.child(2).child(self.hash_epoch).rng());
        let cells = self.modules.drain_cells();
        let batches = cells.len().div_ceil(self.processors().max(1)) as u64;
        self.report.remap_steps += batches * 2 * self.diameter() as u64 + self.diameter() as u64;
        for (addr, val) in cells {
            let m = self.hash.eval(addr) as usize;
            self.modules.poke(m, addr, val);
        }
        stats.rehashes += 1;
        self.report.rehashes += 1;
    }
}

/// Request protocol: Algorithm 2.2 with phase-aware combining (see the
/// module docs for why phase-1 trails stay private).
struct StarRequestProtocol<'a> {
    star: StarGraph,
    tables: &'a mut PendingTables,
    modules: &'a mut ModuleArray,
    write_vals: &'a HashMap<u32, (u64, usize)>,
    combining: bool,
}

impl StarRequestProtocol<'_> {
    /// Private phase-0 trail tag (0 is reserved for the shared tree, so
    /// processor ids are shifted by one).
    fn phase0_trail(pkt: &Packet) -> u32 {
        pkt.src + 1
    }

    /// Trail tag used after the intermediate node: the shared tree when
    /// combining, a second private trail otherwise (distinct from the
    /// phase-0 trail because the two legs of one request may cross).
    fn phase1_trail(&self, pkt: &Packet) -> u32 {
        if self.combining {
            0
        } else {
            (pkt.src + 1) | PHASE1_MARK
        }
    }
}

/// High bit distinguishing non-combining phase-1 trails from phase-0 ones.
const PHASE1_MARK: u32 = 1 << 30;

impl Protocol for StarRequestProtocol<'_> {
    fn on_packet(&mut self, node: usize, mut pkt: Packet, step: u32, out: &mut Outbox) {
        let addr = pkt.tag;
        let is_write = pkt.hop == 1;

        if is_write {
            if pkt.phase == 0 && node == pkt.via as usize {
                pkt.phase = 1;
            }
            if pkt.phase == 1 && node == pkt.dest as usize {
                let (value, proc) = self.write_vals[&pkt.id];
                self.modules
                    .buffer(node, ModuleRequest::Write { addr, value, proc });
                out.deliver(pkt);
                return;
            }
            let target = if pkt.phase == 0 { pkt.via } else { pkt.dest } as usize;
            let port = self
                .star
                .canonical_next_port(node, target)
                .expect("target not yet reached");
            pkt.prev = node as u32;
            out.send(port, pkt);
            return;
        }

        // --- Reads ---
        let arrived_on = if pkt.phase == 1 {
            self.phase1_trail(&pkt)
        } else {
            Self::phase0_trail(&pkt)
        };
        let source = if step == 0 {
            Source::Local
        } else {
            Source::FromNode(pkt.prev)
        };
        let first = self.tables.register(node, addr, arrived_on, source);
        if !first {
            out.absorb(pkt); // merged into the shared phase-2 tree
            return;
        }

        // Phase transition at the intermediate node: the phase-0 trail
        // joins (or opens) the phase-1 trail here via a chain link.
        if pkt.phase == 0 && node == pkt.via as usize {
            pkt.phase = 1;
            let p1 = self.phase1_trail(&pkt);
            let first_p1 =
                self.tables
                    .register(node, addr, p1, Source::Chain(Self::phase0_trail(&pkt)));
            if !first_p1 {
                debug_assert!(self.combining, "private trails never collide");
                out.absorb(pkt);
                return;
            }
        }

        let trail = if pkt.phase == 1 {
            self.phase1_trail(&pkt)
        } else {
            Self::phase0_trail(&pkt)
        };
        if pkt.phase == 1 && node == pkt.dest as usize {
            self.modules
                .buffer(node, ModuleRequest::Read { addr, trail });
            out.deliver(pkt);
            return;
        }
        let target = if pkt.phase == 0 { pkt.via } else { pkt.dest } as usize;
        let port = self
            .star
            .canonical_next_port(node, target)
            .expect("target not yet reached");
        pkt.prev = node as u32;
        out.send(port, pkt);
    }
}

/// Reply protocol: unwind the shared tree, then every chained private
/// trail, delivering at `local` marks.
struct StarReplyProtocol<'a> {
    star: StarGraph,
    tables: &'a mut PendingTables,
    read_values: &'a HashMap<u64, u64>,
    deliveries: &'a mut Vec<(usize, u64)>,
}

impl StarReplyProtocol<'_> {
    fn process_trail(&mut self, node: usize, addr: u64, trail: u32, pkt: Packet, out: &mut Outbox) {
        let entry = self.tables.take(node, addr, trail);
        if entry.local {
            self.deliveries.push((node, self.read_values[&addr]));
        }
        for t in entry.chains {
            self.process_trail(node, addr, t, pkt, out);
        }
        for to in entry.fanout {
            let port = self
                .star
                .port_to(node, to as usize)
                .expect("star is undirected");
            let mut p = pkt;
            p.via = trail;
            out.send(port, p);
        }
    }
}

impl Protocol for StarReplyProtocol<'_> {
    fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
        let before = out.pending_sends();
        self.process_trail(node, pkt.tag, pkt.via, pkt, out);
        if out.pending_sends() == before {
            out.deliver(pkt); // leaf: nothing forwarded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnpram_pram::machine::PramMachine;
    use lnpram_pram::model::WritePolicy;
    use lnpram_pram::programs::{Broadcast, Histogram, PermutationTraffic, PrefixSum};
    use lnpram_routing::workloads;

    #[test]
    fn prefix_sum_matches_reference_on_4_star() {
        let values: Vec<u64> = (0..24).map(|i| i + 1).collect();
        let mut prog = PrefixSum::new(values.clone());
        let space = prog.address_space();
        let mut emu = StarPramEmulator::new(4, AccessMode::Erew, space, EmulatorConfig::default());
        emu.run_program(&mut prog, 10_000);
        let mut oracle = PramMachine::new(space, AccessMode::Erew);
        oracle.run(&mut PrefixSum::new(values), 10_000);
        assert_eq!(emu.memory_image(space), oracle.memory());
    }

    #[test]
    fn broadcast_hotspot_combines_on_star() {
        let mut prog = Broadcast::new(24, 2, 31);
        let space = prog.address_space();
        let mut emu = StarPramEmulator::new(4, AccessMode::Crew, space, EmulatorConfig::default());
        let report = emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(space)));
        assert!(report.total_combined() > 0, "hot spot must combine");
        // Full read combining: the module's batch stays tiny on read steps.
        for s in report.steps.iter().filter(|s| s.combined > 0) {
            assert!(
                s.service_steps <= 2,
                "combining should collapse the batch, got {}",
                s.service_steps
            );
        }
    }

    #[test]
    fn crcw_histogram_on_star() {
        let inputs: Vec<u64> = (0..24).map(|i| i % 3).collect();
        let mut prog = Histogram::new(inputs, 3);
        let space = prog.address_space();
        let mut emu = StarPramEmulator::new(
            4,
            AccessMode::Crcw(WritePolicy::Sum),
            space,
            EmulatorConfig::default(),
        );
        emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(space)));
    }

    #[test]
    fn permutation_traffic_slowdown_on_5_star() {
        // Corollary 2.3: Õ(n) per EREW step. Check a small multiple of
        // the diameter (request ≤ 2D, reply ≤ 2D ⇒ expect ≲ 6D).
        let mut rng = SeedSeq::new(3).rng();
        let perm = workloads::random_permutation(120, &mut rng);
        let mut prog = PermutationTraffic::new(perm, 3);
        let mut emu = StarPramEmulator::new(
            5,
            AccessMode::Erew,
            prog.address_space(),
            EmulatorConfig::default(),
        );
        let report = emu.run_program(&mut prog, 1000);
        assert_eq!(report.rehashes, 0);
        let c = report.slowdown_per_diameter(emu.diameter());
        assert!(c < 10.0, "star slowdown {c:.2}×diameter");
    }

    #[test]
    fn combining_off_is_correct_but_floods() {
        let mut prog = Broadcast::new(24, 1, 7);
        let space = prog.address_space();
        let mut emu = StarPramEmulator::new(
            4,
            AccessMode::Crew,
            space,
            EmulatorConfig {
                combining: false,
                ..Default::default()
            },
        );
        let report = emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(space)));
        let max_service = report.steps.iter().map(|s| s.service_steps).max().unwrap();
        assert_eq!(max_service, 24, "uncombined hot spot floods the module");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let perm: Vec<usize> = (0..24).map(|i| (i * 7 + 3) % 24).collect();
            let mut prog = PermutationTraffic::new(perm, 2);
            let mut emu = StarPramEmulator::new(
                4,
                AccessMode::Erew,
                prog.address_space(),
                EmulatorConfig {
                    seed: 5,
                    ..Default::default()
                },
            );
            let rep = emu.run_program(&mut prog, 100);
            (rep.network_steps(), emu.memory_image(24))
        };
        assert_eq!(run(), run());
    }
}
