//! Theorems 2.5 and 2.6: PRAM emulation on a leveled network.
//!
//! The emulating network is an ℓ-level leveled network with the
//! unique-path property, traversed twice per routing phase (the
//! [`DoubledLeveled`] wrap): processors sit on the first column, memory
//! modules on the last. One emulated PRAM step is:
//!
//! 1. **Issue**: every processor's `MemOp` becomes a request packet for
//!    module `h(addr)` (`h` drawn from the Karlin–Upfal class with
//!    `S = c·L`, §2.1).
//! 2. **Request routing** (Algorithm 2.1): random intermediate column-ℓ
//!    node, then the unique path to the module. Read requests are
//!    combined en route through the pending tables of
//!    [`crate::combining`] (Theorem 2.6); writes travel individually and
//!    are resolved at the module.
//! 3. **Service**: modules serve their batch with read-before-write
//!    semantics ([`crate::memory`]).
//! 4. **Reply routing**: read replies retrace the request trees backward
//!    (the stored direction bits), fanning out at every combining point.
//! 5. **Rehash** (§2.1): if the request routing misses its `d(ℓ)` step
//!    budget, a designated processor draws a fresh hash function, all
//!    cells are remapped (an explicit remap charge), the budget doubles,
//!    and the step restarts.
//!
//! Results are bit-identical to `lnpram_pram::PramMachine` — enforced by
//! the tests here and the cross-crate integration tests.

use crate::combining::{PendingTables, Source};
use crate::config::{EmuReport, EmulatorConfig, StepStats};
use crate::memory::{ModuleArray, ModuleRequest};
use lnpram_hash::{HashFamily, PolyHash};
use lnpram_math::rng::SeedSeq;
use lnpram_pram::model::{AccessMode, MemOp, PramProgram, WritePolicy};
use lnpram_routing::DoubledLeveled;
use lnpram_shard::{AnyEngine, LevelCut};
use lnpram_simnet::{Outbox, Packet, Protocol, SimConfig};
use lnpram_topology::leveled::{Leveled, LeveledNet};
use lnpram_topology::Network;
use rand::Rng;
use std::collections::HashMap;

/// One issued request, kept by the emulator across rehash attempts.
#[derive(Debug, Clone, Copy)]
struct Request {
    proc: usize,
    addr: u64,
    /// `None` = read; `Some(v)` = write of `v`.
    write: Option<u64>,
}

/// The PRAM emulator over a leveled network (Theorems 2.5/2.6).
///
/// `L` is the *inner* ℓ-level network; processors and modules are its
/// `width()` first/last-column nodes. `Corollary 2.4/2.6` instances use
/// [`lnpram_topology::leveled::UnrolledShuffle`]; the classical host is
/// [`lnpram_topology::leveled::RadixButterfly`].
pub struct LeveledPramEmulator<L: Leveled + Copy> {
    inner: L,
    cfg: EmulatorConfig,
    family: HashFamily,
    hash: PolyHash,
    modules: ModuleArray,
    tables: PendingTables,
    seq: SeedSeq,
    hash_epoch: u64,
    report: EmuReport,
    /// Forward (request-phase) view of the doubled network.
    fwd: LeveledNet<DoubledLeveled<L>>,
    /// Backward (reply-phase) view of the doubled network.
    bwd: LeveledNet<DoubledLeveled<L>>,
    /// Request-phase engine, built once and recycled every attempt
    /// (serial or sharded per [`EmulatorConfig::shards`]).
    req_engine: AnyEngine,
    /// Reply-phase engine, likewise persistent.
    rep_engine: AnyEngine,
}

impl<L: Leveled + Copy> LeveledPramEmulator<L> {
    /// Build an emulator for programs over `address_space` cells.
    pub fn new(inner: L, mode: AccessMode, address_space: u64, cfg: EmulatorConfig) -> Self {
        let width = inner.width();
        // Path length per phase is 2ℓ (the doubled traversal) — that is
        // the "diameter" the paper's budgets and hash degree scale with.
        let diameter = 2 * inner.levels();
        let family = match cfg.hash_degree_override {
            Some(s_deg) => HashFamily::new(address_space, width as u64, s_deg.max(1)),
            None => HashFamily::for_diameter(
                address_space,
                width as u64,
                diameter,
                cfg.hash_degree_factor.max(1),
            ),
        };
        let seq = SeedSeq::new(cfg.seed);
        let hash = family.sample(&mut seq.child(0).rng());
        let nodes = (2 * inner.levels() + 1) * width;
        let doubled = DoubledLeveled::new(inner);
        let fwd = LeveledNet::forward(doubled);
        let bwd = LeveledNet::backward(doubled);
        // Engines are built once here and recycled with `reset` for
        // every attempt of every PRAM step: a T-step emulation builds
        // its per-link state once instead of T times. The reply phase
        // retraces an already-successful pattern, so it never times out.
        // With `cfg.shards ≥ 2` both phases run on the partitioned
        // lockstep path, column bands cut by `LevelCut` (bit-identical
        // outcomes — the lnpram-shard determinism contract).
        let part = LevelCut::new(width);
        let req_engine = AnyEngine::with_partitioner(
            &fwd,
            SimConfig {
                discipline: cfg.discipline,
                shards: cfg.shards,
                ..Default::default()
            },
            &part,
        );
        let rep_engine = AnyEngine::with_partitioner(
            &bwd,
            SimConfig {
                discipline: cfg.discipline,
                max_steps: u32::MAX,
                shards: cfg.shards,
                ..Default::default()
            },
            &part,
        );
        LeveledPramEmulator {
            inner,
            cfg,
            family,
            hash,
            modules: ModuleArray::new(width, mode),
            tables: PendingTables::new(nodes),
            seq,
            hash_epoch: 0,
            report: EmuReport::default(),
            fwd,
            bwd,
            req_engine,
            rep_engine,
        }
    }

    /// Number of processors (= memory modules = column width).
    pub fn processors(&self) -> usize {
        self.inner.width()
    }

    /// The per-phase path length `2ℓ` — the normalisation constant of the
    /// Õ(ℓ) theorems.
    pub fn diameter(&self) -> usize {
        2 * self.inner.levels()
    }

    /// Module owning `addr` under the current hash function.
    pub fn module_of(&self, addr: u64) -> usize {
        self.hash.eval(addr) as usize
    }

    /// Direct read of the emulated shared memory (for verification).
    pub fn peek(&self, addr: u64) -> u64 {
        self.modules.peek(self.module_of(addr), addr)
    }

    /// Snapshot the full memory image `0..address_space` (diffed against
    /// the reference machine by the tests).
    pub fn memory_image(&self, address_space: u64) -> Vec<u64> {
        (0..address_space).map(|a| self.peek(a)).collect()
    }

    /// The accumulated report.
    pub fn report(&self) -> &EmuReport {
        &self.report
    }

    /// Run `prog` to completion (every processor `Halt`s), mirroring
    /// [`lnpram_pram::PramMachine::run`]. Returns the final report clone.
    pub fn run_program<P: PramProgram>(&mut self, prog: &mut P, max_steps: usize) -> EmuReport {
        assert!(
            prog.processors() <= self.processors(),
            "program needs {} processors, network has {}",
            prog.processors(),
            self.processors()
        );
        assert!(prog.address_space() <= self.family.address_space);
        for (addr, val) in prog.initial_memory() {
            let m = self.module_of(addr);
            self.modules.poke(m, addr, val);
        }
        let p = prog.processors();
        let mut last_read: Vec<Option<u64>> = vec![None; p];
        for step in 0..max_steps {
            let ops: Vec<MemOp> = (0..p).map(|i| prog.op(i, step, last_read[i])).collect();
            if ops.iter().all(|o| matches!(o, MemOp::Halt)) {
                break;
            }
            let reads = self.emulate_step(&ops, step as u64);
            for (proc, value) in reads {
                last_read[proc] = Some(value);
            }
            self.report.pram_steps += 1;
        }
        self.report.clone()
    }

    /// Emulate one PRAM step; returns `(proc, value)` for every read.
    pub fn emulate_step(&mut self, ops: &[MemOp], step_label: u64) -> Vec<(usize, u64)> {
        let requests: Vec<Request> = ops
            .iter()
            .enumerate()
            .filter_map(|(proc, op)| match *op {
                MemOp::Read(addr) => Some(Request {
                    proc,
                    addr,
                    write: None,
                }),
                MemOp::Write(addr, v) => Some(Request {
                    proc,
                    addr,
                    write: Some(v),
                }),
                MemOp::None | MemOp::Halt => None,
            })
            .collect();

        let mut stats = StepStats {
            requests: requests.len() as u32,
            ..Default::default()
        };
        if requests.is_empty() {
            self.report.steps.push(stats);
            return Vec::new();
        }

        let step_seq = self.seq.child(1).child(step_label);
        let mut attempt = 0u32;
        let reads_out = loop {
            let budget = self.cfg.budget_factor * self.diameter() as u32 * (1 << attempt.min(8));
            match self.try_step(
                &requests,
                step_seq.child(attempt as u64),
                budget,
                &mut stats,
            ) {
                Some(reads) => break reads,
                None => {
                    attempt += 1;
                    assert!(
                        attempt <= self.cfg.max_rehashes,
                        "exceeded max_rehashes ({}) — budget_factor too small",
                        self.cfg.max_rehashes
                    );
                    self.rehash(&mut stats);
                }
            }
        };
        self.report.steps.push(stats);
        reads_out
    }

    /// One attempt at routing + serving a step. `None` = request-phase
    /// overrun (caller rehashes and retries).
    fn try_step(
        &mut self,
        requests: &[Request],
        attempt_seq: SeedSeq,
        budget: u32,
        stats: &mut StepStats,
    ) -> Option<Vec<(usize, u64)>> {
        let width = self.inner.width();
        self.tables.reset();
        self.modules.clear_batches();

        // ---- Request phase ----
        self.req_engine.reset();
        self.req_engine.set_max_steps(budget);
        let mut via_rng = attempt_seq.child(0).rng();
        let mut write_vals: HashMap<u32, (u64, usize)> = HashMap::new();
        for (id, req) in requests.iter().enumerate() {
            let module = self.hash.eval(req.addr) as u32;
            let via = via_rng.gen_range(0..width) as u32;
            let mut pkt = Packet::new(id as u32, req.proc as u32, module)
                .with_via(via)
                .with_tag(req.addr);
            pkt.phase = u8::from(req.write.is_some());
            if let Some(v) = req.write {
                write_vals.insert(id as u32, (v, req.proc));
            }
            self.req_engine.inject(self.fwd.node_id(0, req.proc), pkt);
        }
        let combining = self.cfg.combining;
        {
            let Self {
                fwd,
                tables,
                modules,
                req_engine,
                ..
            } = self;
            let mut proto = RequestProtocol {
                net: &*fwd,
                tables,
                modules,
                write_vals: &mut write_vals,
                combining,
                write_merges: 0,
            };
            let out = req_engine.run(&mut proto);
            if !out.completed {
                return None;
            }
            stats.request_steps = out.metrics.routing_time;
            stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);
            stats.combined = proto.write_merges;
        }
        stats.combined += self.tables.combined();

        // ---- Service ----
        let (reads, busiest) = self.modules.serve_batches();
        stats.service_steps = busiest;

        // ---- Reply phase ----
        if reads.is_empty() {
            return Some(Vec::new());
        }
        self.rep_engine.reset();
        let mut read_values: HashMap<u64, u64> = HashMap::new();
        for &(module, addr, trail, value) in &reads {
            read_values.insert(addr, value);
            let mut pkt = Packet::new(0, trail, 0).with_tag(addr);
            pkt.via = trail;
            self.rep_engine
                .inject(self.bwd.node_id(2 * self.inner.levels(), module), pkt);
        }
        let mut deliveries: Vec<(usize, u64)> = Vec::new();
        {
            let Self {
                bwd,
                tables,
                rep_engine,
                ..
            } = self;
            let mut proto = ReplyProtocol {
                net: &*bwd,
                tables,
                read_values: &read_values,
                deliveries: &mut deliveries,
            };
            let out = rep_engine.run(&mut proto);
            debug_assert!(out.completed);
            stats.reply_steps = out.metrics.routing_time;
            stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);
        }
        debug_assert!(self.tables.all_clear(), "unconsumed pending entries");
        Some(deliveries)
    }

    /// §2.1 rehashing: draw a fresh `h`, remap every stored cell, charge
    /// the redistribution.
    fn rehash(&mut self, stats: &mut StepStats) {
        self.hash_epoch += 1;
        self.hash = self
            .family
            .sample(&mut self.seq.child(2).child(self.hash_epoch).rng());
        let cells = self.modules.drain_cells();
        // Remap charge: the cells form ⌈cells/N⌉ batches, each an
        // h-relation costing one full traversal (2ℓ), plus broadcasting
        // the O(L log M)-bit description of h (ℓ steps).
        let batches = cells.len().div_ceil(self.processors().max(1)) as u64;
        self.report.remap_steps += batches * self.diameter() as u64 + self.inner.levels() as u64;
        for (addr, val) in cells {
            let m = self.hash.eval(addr) as usize;
            self.modules.poke(m, addr, val);
        }
        stats.rehashes += 1;
        self.report.rehashes += 1;
    }
}

/// Request-phase protocol: Algorithm 2.1 routing plus combining tables.
struct RequestProtocol<'a, L: Leveled> {
    net: &'a LeveledNet<DoubledLeveled<L>>,
    tables: &'a mut PendingTables,
    modules: &'a mut ModuleArray,
    write_vals: &'a mut HashMap<u32, (u64, usize)>,
    combining: bool,
    /// Same-step write merges performed (footnote 3 applied to writes).
    write_merges: u32,
}

impl<L: Leveled> RequestProtocol<'_, L> {
    fn trail_of(&self, pkt: &Packet) -> u32 {
        if self.combining {
            0
        } else {
            pkt.src
        }
    }

    /// The write policy if concurrent same-address writes can be merged
    /// en route without changing the module-level resolution: the policy
    /// must be associative with a representative writer (Sum, Max) or
    /// select the minimum processor (Priority, and our deterministic
    /// Arbitrary). Common must see every writer to detect mismatches;
    /// EREW/CREW writes are conflicts the modules must observe.
    fn mergeable_policy(&self) -> Option<WritePolicy> {
        match self.modules.mode() {
            AccessMode::Crcw(
                p @ (WritePolicy::Sum
                | WritePolicy::Max
                | WritePolicy::Priority
                | WritePolicy::Arbitrary),
            ) => Some(p),
            _ => None,
        }
    }

    /// Merge `(value, proc)` pairs under `policy` (the en-route version of
    /// [`resolve_write`](lnpram_pram::machine::resolve_write), restricted
    /// to the associative policies).
    fn merge(policy: WritePolicy, acc: (u64, usize), next: (u64, usize)) -> (u64, usize) {
        match policy {
            WritePolicy::Sum => (acc.0 + next.0, acc.1.min(next.1)),
            WritePolicy::Max => (acc.0.max(next.0), acc.1.min(next.1)),
            // Priority / deterministic Arbitrary: lowest processor's value.
            _ => {
                if next.1 < acc.1 {
                    next
                } else {
                    acc
                }
            }
        }
    }
}

impl<L: Leveled> Protocol for RequestProtocol<'_, L> {
    /// Footnote 3 for *writes*: all of a step's arrivals at one node that
    /// write the same address under an associative policy merge into one
    /// packet before forwarding. (Reads combine through the pending
    /// tables in `on_packet`; the merge here happens in the second,
    /// convergent half of the route where the remaining paths coincide.)
    fn on_arrivals(&mut self, node: usize, pkts: &[Packet], step: u32, out: &mut Outbox) {
        let lv = self.net.leveled();
        let half = lv.levels() / 2;
        let (col, _) = self.net.split(node);
        let policy = if self.combining && col >= half && col < lv.levels() && pkts.len() > 1 {
            self.mergeable_policy()
        } else {
            None
        };
        let Some(policy) = policy else {
            for &pkt in pkts {
                self.on_packet(node, pkt, step, out);
            }
            return;
        };
        // First same-address write in batch order becomes the
        // representative; later ones fold their (value, proc) into it.
        let mut rep_of: HashMap<u64, usize> = HashMap::new();
        let mut merged: Vec<Option<Packet>> = pkts.iter().copied().map(Some).collect();
        for (i, pkt) in pkts.iter().enumerate() {
            if pkt.phase != 1 {
                continue; // reads go through the pending tables as usual
            }
            match rep_of.entry(pkt.tag) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let rep = pkts[*e.get()];
                    let a = self.write_vals[&rep.id];
                    let b = self.write_vals[&pkt.id];
                    self.write_vals.insert(rep.id, Self::merge(policy, a, b));
                    merged[i] = None;
                    self.write_merges += 1;
                }
            }
        }
        for pkt in merged.into_iter().flatten() {
            self.on_packet(node, pkt, step, out);
        }
    }

    fn on_packet(&mut self, node: usize, mut pkt: Packet, step: u32, out: &mut Outbox) {
        let lv = self.net.leveled();
        let half = lv.levels() / 2;
        let (col, idx) = self.net.split(node);
        let is_write = pkt.phase == 1;
        let addr = pkt.tag;

        if col == lv.levels() {
            // Module column.
            if is_write {
                let (value, proc) = self.write_vals[&pkt.id];
                self.modules
                    .buffer(idx, ModuleRequest::Write { addr, value, proc });
                out.deliver(pkt);
            } else {
                let trail = self.trail_of(&pkt);
                let first = self
                    .tables
                    .register(node, addr, trail, Source::FromNode(pkt.prev));
                if first {
                    self.modules
                        .buffer(idx, ModuleRequest::Read { addr, trail });
                }
                out.deliver(pkt);
            }
            return;
        }

        if !is_write {
            let trail = self.trail_of(&pkt);
            let source = if step == 0 {
                Source::Local
            } else {
                Source::FromNode(pkt.prev)
            };
            let first = self.tables.register(node, addr, trail, source);
            if !first {
                out.absorb(pkt); // combined — the pending entry fans out later
                return;
            }
        }

        let target = if col < half { pkt.via } else { pkt.dest } as usize;
        let digit = lv.digit_toward(col, idx, target);
        pkt.prev = node as u32;
        out.send(digit, pkt);
    }
}

/// Reply-phase protocol: retrace the pending-table tree, fanning out.
struct ReplyProtocol<'a, L: Leveled> {
    net: &'a LeveledNet<DoubledLeveled<L>>,
    tables: &'a mut PendingTables,
    read_values: &'a HashMap<u64, u64>,
    deliveries: &'a mut Vec<(usize, u64)>,
}

impl<L: Leveled> Protocol for ReplyProtocol<'_, L> {
    fn on_packet(&mut self, node: usize, pkt: Packet, _step: u32, out: &mut Outbox) {
        let addr = pkt.tag;
        let trail = pkt.via;
        let entry = self.tables.take(node, addr, trail);
        if entry.local {
            let (col, idx) = self.net.split(node);
            debug_assert_eq!(col, 0, "local requests only originate in column 0");
            self.deliveries.push((idx, self.read_values[&addr]));
        }
        let mut sent = false;
        for &to in &entry.fanout {
            let port = self
                .net
                .port_to(node, to as usize)
                .expect("fanout neighbor reachable on reply network");
            out.send(port, pkt);
            sent = true;
        }
        if !sent {
            out.deliver(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnpram_pram::machine::PramMachine;
    use lnpram_pram::model::WritePolicy;
    use lnpram_pram::programs::{Broadcast, PrefixSum, ReductionMax};
    use lnpram_topology::leveled::{RadixButterfly, UnrolledShuffle};

    fn check_against_reference<P, Q>(
        mut prog_emu: P,
        mut prog_ref: Q,
        mode: AccessMode,
        inner: RadixButterfly,
    ) -> (EmuReport, Vec<u64>)
    where
        P: PramProgram,
        Q: PramProgram,
    {
        let space = prog_emu.address_space();
        let mut emu = LeveledPramEmulator::new(inner, mode, space, EmulatorConfig::default());
        let report = emu.run_program(&mut prog_emu, 100_000);
        let mut oracle = PramMachine::new(space, mode);
        oracle.run(&mut prog_ref, 100_000);
        let image = emu.memory_image(space);
        assert_eq!(image, oracle.memory(), "emulated memory must match oracle");
        (report, image)
    }

    #[test]
    fn reduction_max_matches_reference() {
        let values: Vec<u64> = (0..16).map(|i| (i * 37 + 11) % 100).collect();
        let inner = RadixButterfly::new(2, 3); // 8 processors for 8 pairs
        let (report, image) = check_against_reference(
            ReductionMax::new(values.clone()),
            ReductionMax::new(values.clone()),
            AccessMode::Erew,
            inner,
        );
        assert_eq!(image[0], *values.iter().max().unwrap());
        assert!(report.pram_steps > 0);
        assert_eq!(report.rehashes, 0, "default budget should not rehash");
    }

    #[test]
    fn prefix_sum_matches_reference() {
        let values: Vec<u64> = (0..8).map(|i| i + 1).collect();
        let inner = RadixButterfly::new(2, 3);
        let prog = PrefixSum::new(values.clone());
        let expected = prog.expected();
        let (_report, image) = check_against_reference(
            prog,
            PrefixSum::new(values.clone()),
            AccessMode::Erew,
            inner,
        );
        let check = PrefixSum::new(values);
        let base = check.result_base() as usize;
        assert_eq!(&image[base..base + 8], &expected[..]);
    }

    #[test]
    fn broadcast_hotspot_combines() {
        // 16 processors all read cell 0 — combining must collapse module
        // traffic: the module serves exactly 1 read per round.
        let inner = RadixButterfly::new(2, 4);
        let mut prog = Broadcast::new(16, 2, 777);
        let mut emu = LeveledPramEmulator::new(
            inner,
            AccessMode::Crew,
            prog.address_space(),
            EmulatorConfig::default(),
        );
        let report = emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(17)));
        // Each read round: 16 requests collapse along the combining tree.
        let combined = report.total_combined();
        assert!(combined >= 15, "expected heavy combining, got {combined}");
        // Busiest module batch must stay 1 on read rounds (full combining).
        for s in report.steps.iter().filter(|s| s.combined > 0) {
            assert_eq!(s.service_steps, 1, "combining must collapse the batch");
        }
    }

    #[test]
    fn combining_off_floods_the_module() {
        let inner = RadixButterfly::new(2, 4);
        let mut prog = Broadcast::new(16, 1, 5);
        let mut emu = LeveledPramEmulator::new(
            inner,
            AccessMode::Crew,
            prog.address_space(),
            EmulatorConfig {
                combining: false,
                ..Default::default()
            },
        );
        let report = emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(17)));
        assert_eq!(report.total_combined(), 0);
        // All 16 un-combined reads land on one module.
        let max_service = report.steps.iter().map(|s| s.service_steps).max().unwrap();
        assert_eq!(max_service, 16);
    }

    #[test]
    fn crcw_sum_histogram_on_shuffle_leveled() {
        use lnpram_pram::programs::Histogram;
        let shuffle = UnrolledShuffle::new(3, 3); // 27 processors
        let inputs: Vec<u64> = (0..27).map(|i| i % 4).collect();
        let mut prog = Histogram::new(inputs.clone(), 4);
        let space = prog.address_space();
        let mut emu = LeveledPramEmulator::new(
            shuffle,
            AccessMode::Crcw(WritePolicy::Sum),
            space,
            EmulatorConfig::default(),
        );
        emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(space)));
        let mut oracle = PramMachine::new(space, AccessMode::Crcw(WritePolicy::Sum));
        oracle.run(&mut Histogram::new(inputs, 4), 1000);
        assert_eq!(emu.memory_image(space), oracle.memory());
    }

    #[test]
    fn write_hotspot_merges_en_route_and_stays_exact() {
        // All 32 processors CRCW-Sum into one cell (a 1-bucket histogram).
        // Footnote 3's write combining must shrink the busiest module
        // batch below the processor count while keeping the sum exact.
        use lnpram_pram::programs::Histogram;
        let inner = RadixButterfly::new(2, 5);
        let inputs: Vec<u64> = vec![0; 32]; // every key hits bucket 0
        let mode = AccessMode::Crcw(WritePolicy::Sum);
        let run = |combining: bool| {
            let mut prog = Histogram::new(inputs.clone(), 1);
            let space = prog.address_space();
            let mut emu = LeveledPramEmulator::new(
                inner,
                mode,
                space,
                EmulatorConfig {
                    combining,
                    ..Default::default()
                },
            );
            let rep = emu.run_program(&mut prog, 1000);
            let busiest = rep.steps.iter().map(|s| s.service_steps).max().unwrap();
            let image = emu.memory_image(space);
            (busiest, rep.total_combined(), image)
        };
        let (busy_on, merges_on, image_on) = run(true);
        let (busy_off, merges_off, image_off) = run(false);
        let space = Histogram::new(inputs.clone(), 1).address_space();
        let mut oracle = PramMachine::new(space, mode);
        oracle.run(&mut Histogram::new(inputs, 1), 1000);
        assert_eq!(image_on, oracle.memory(), "merged run must stay exact");
        assert_eq!(image_off, oracle.memory());
        assert_eq!(merges_off, 0);
        assert!(merges_on > 0, "expected en-route write merges");
        assert!(
            busy_on < busy_off,
            "combining should shrink the hot module batch: {busy_on} vs {busy_off}"
        );
    }

    #[test]
    fn write_merging_respects_priority_policy() {
        // Priority: lowest processor id wins. Merge en route and verify
        // the module still resolves to processor 0's value.
        let inner = RadixButterfly::new(2, 4);
        let mode = AccessMode::Crcw(WritePolicy::Priority);
        let mut emu = LeveledPramEmulator::new(inner, mode, 8, EmulatorConfig::default());
        // Every processor writes (100 + its id) into cell 3.
        let ops: Vec<MemOp> = (0..16).map(|p| MemOp::Write(3, 100 + p as u64)).collect();
        emu.emulate_step(&ops, 0);
        assert_eq!(emu.peek(3), 100, "priority resolution must survive merging");
    }

    #[test]
    fn tight_budget_forces_rehash_but_stays_correct() {
        let inner = RadixButterfly::new(2, 4);
        let values: Vec<u64> = (0..32).map(|i| (i * 13) % 64).collect();
        let mut prog = ReductionMax::new(values.clone());
        let mut emu = LeveledPramEmulator::new(
            inner,
            AccessMode::Erew,
            prog.address_space(),
            EmulatorConfig {
                budget_factor: 1, // 1×diameter is below 2ℓ + delay for some steps
                max_rehashes: 12,
                ..Default::default()
            },
        );
        let report = emu.run_program(&mut prog, 10_000);
        assert!(prog.verify(&emu.memory_image(32)));
        // With such a tight budget at least one step should have rehashed
        // (path length alone is 2ℓ = budget).
        assert!(report.rehashes > 0, "expected rehashes under 1x budget");
        assert!(report.remap_steps > 0);
    }

    #[test]
    fn slowdown_is_small_multiple_of_diameter() {
        // Theorem 2.5's claim, empirically: mean step time ≤ small × 2ℓ.
        let inner = RadixButterfly::new(2, 6); // 64 processors
        let perm: Vec<usize> = (0..64).map(|i| (i * 7 + 5) % 64).collect();
        let mut prog = lnpram_pram::programs::PermutationTraffic::new(perm, 4);
        let mut emu = LeveledPramEmulator::new(
            inner,
            AccessMode::Erew,
            prog.address_space(),
            EmulatorConfig::default(),
        );
        let report = emu.run_program(&mut prog, 1000);
        let c = report.slowdown_per_diameter(emu.diameter());
        assert!(c < 6.0, "slowdown constant {c:.2} too large");
        assert_eq!(report.rehashes, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let inner = RadixButterfly::new(2, 4);
        let run = || {
            let perm: Vec<usize> = (0..16).map(|i| (i * 3 + 1) % 16).collect();
            let mut prog = lnpram_pram::programs::PermutationTraffic::new(perm, 2);
            let mut emu = LeveledPramEmulator::new(
                inner,
                AccessMode::Erew,
                prog.address_space(),
                EmulatorConfig {
                    seed: 99,
                    ..Default::default()
                },
            );
            let rep = emu.run_program(&mut prog, 100);
            (rep.network_steps(), emu.memory_image(16))
        };
        assert_eq!(run(), run());
    }
}
