//! Theorems 3.2 and 3.3: PRAM emulation on the n×n mesh.
//!
//! The §3.3 emulation has exactly two phases per PRAM step (the paper's
//! improvement over Karlin–Upfal's four): processor `i` sends its request
//! straight to module `h(addr)` with the three-stage routing of §3.4
//! (`2n + o(n)` w.h.p.), and read replies travel straight back the same
//! way — `4n + o(n)` per EREW step (Theorem 3.2).
//!
//! Under a *d-local* request pattern (every request's module within
//! Manhattan distance `d` of its processor) the same algorithm, with the
//! stage-1 slice capped at `O(d)` rows and a direct (locality-preserving)
//! address map, finishes in `6d + o(d)` (Theorem 3.3). This emulator
//! therefore supports two address mappings:
//!
//! * [`MeshMapping::Hashed`] — the Karlin–Upfal hash, the general case;
//! * [`MeshMapping::Direct`] — cell `a` lives at node `a` (requires
//!   `address_space ≤ n²`), the locality experiments' map.
//!
//! Reads are *not* combined on the mesh (the paper treats CRCW here as
//! "the same algorithm plus the combining trick" and analyses only EREW;
//! we keep the mesh emulator faithful to §3 — hot-spot reads serialise at
//! the module, which the CRCW tables show by contrast with the leveled
//! emulator). Correctness for concurrent accesses is still exact because
//! modules serve batches with read-before-write semantics.

use crate::config::{EmuReport, EmulatorConfig, StepStats};
use crate::memory::{ModuleArray, ModuleRequest};
use lnpram_hash::{HashFamily, PolyHash};
use lnpram_math::rng::SeedSeq;
use lnpram_pram::model::{AccessMode, MemOp, PramProgram};
use lnpram_routing::mesh::{
    default_block_rows, default_slice_rows, mesh_engine, MeshAlgorithm, MeshRouter,
};
use lnpram_shard::AnyEngine;
use lnpram_simnet::{Discipline, Outbox, Packet, Protocol, SimConfig};
use lnpram_topology::{Mesh, Network};
use rand::Rng;
use std::collections::HashMap;

/// How shared addresses map to mesh nodes.
#[derive(Debug, Clone)]
pub enum MeshMapping {
    /// Karlin–Upfal hashing onto the n² modules (the general emulation).
    Hashed(PolyHash),
    /// Identity map: address `a` lives at node `a` (locality experiments).
    Direct,
}

impl MeshMapping {
    /// The module node for `addr`.
    pub fn module_of(&self, addr: u64) -> usize {
        match self {
            MeshMapping::Hashed(h) => h.eval(addr) as usize,
            MeshMapping::Direct => addr as usize,
        }
    }
}

/// The PRAM emulator on the n×n mesh (Theorems 3.2/3.3).
pub struct MeshPramEmulator {
    mesh: Mesh,
    cfg: EmulatorConfig,
    family: HashFamily,
    mapping: MeshMapping,
    slice_rows: usize,
    /// `Some(block_rows)` switches both routing phases to the
    /// constant-queue three-stage variant (Theorem 3.2's O(1)-queue
    /// refinement); `None` uses the plain three-stage algorithm.
    block_rows: Option<usize>,
    modules: ModuleArray,
    seq: SeedSeq,
    hash_epoch: u64,
    report: EmuReport,
    /// One persistent engine serves both routing phases (same mesh, same
    /// discipline); recycled with `reset` per phase. Serial or sharded
    /// into row bands per [`EmulatorConfig::shards`].
    engine: AnyEngine,
}

impl MeshPramEmulator {
    /// Hashed-mapping emulator on an `n×n` mesh for `address_space` cells.
    pub fn new(n: usize, mode: AccessMode, address_space: u64, cfg: EmulatorConfig) -> Self {
        let mesh = Mesh::square(n);
        let modules = mesh.num_nodes() as u64;
        // The §3 mesh bound scales with n (per routing phase 2n+o(n)); the
        // hash degree follows §2.1 with L = the mesh diameter 2n−2.
        let family = match cfg.hash_degree_override {
            Some(s_deg) => HashFamily::new(address_space, modules, s_deg.max(1)),
            None => HashFamily::for_diameter(
                address_space,
                modules,
                mesh.diameter().max(1),
                cfg.hash_degree_factor.max(1),
            ),
        };
        let seq = SeedSeq::new(cfg.seed);
        let hash = family.sample(&mut seq.child(0).rng());
        // Same construction as `MeshRoutingSession` (row bands on the
        // sharded path), built once and recycled per phase.
        let engine = mesh_engine(
            &mesh,
            SimConfig {
                discipline: Discipline::FurthestFirst,
                shards: cfg.shards,
                ..Default::default()
            },
        );
        MeshPramEmulator {
            mesh,
            cfg,
            family,
            mapping: MeshMapping::Hashed(hash),
            slice_rows: default_slice_rows(n),
            block_rows: None,
            modules: ModuleArray::new(mesh.num_nodes(), mode),
            seq,
            hash_epoch: 0,
            report: EmuReport::default(),
            engine,
        }
    }

    /// Locality emulator (Theorem 3.3): direct address map and slice
    /// height capped at `d` rows. `address_space ≤ n²` required.
    pub fn new_local(
        n: usize,
        mode: AccessMode,
        address_space: u64,
        d: usize,
        cfg: EmulatorConfig,
    ) -> Self {
        let mut emu = Self::new(n, mode, address_space, cfg);
        assert!(address_space <= (n * n) as u64, "direct map needs M <= n^2");
        emu.mapping = MeshMapping::Direct;
        emu.slice_rows = default_slice_rows(n).min(d.max(1));
        emu
    }

    /// Switch to the constant-queue routing variant (Theorem 3.2's O(1)
    /// queue claim) with destination blocks of `⌈log₂ n⌉` rows.
    #[must_use]
    pub fn with_const_queue(mut self) -> Self {
        self.block_rows = Some(default_block_rows(self.n()));
        self
    }

    /// Side length n.
    pub fn n(&self) -> usize {
        self.mesh.rows()
    }

    /// The normalisation constant of Theorem 3.2 (`4n + o(n)` per step):
    /// report `mean_step_time() / n` against 4.
    pub fn per_n(&self) -> f64 {
        self.report.mean_step_time() / self.n() as f64
    }

    /// Module node for `addr` under the current mapping.
    pub fn module_of(&self, addr: u64) -> usize {
        self.mapping.module_of(addr)
    }

    /// Direct read of the emulated memory.
    pub fn peek(&self, addr: u64) -> u64 {
        self.modules.peek(self.module_of(addr), addr)
    }

    /// Full memory image for oracle diffing.
    pub fn memory_image(&self, address_space: u64) -> Vec<u64> {
        (0..address_space).map(|a| self.peek(a)).collect()
    }

    /// The accumulated report.
    pub fn report(&self) -> &EmuReport {
        &self.report
    }

    /// Run `prog` to completion, mirroring the reference machine.
    pub fn run_program<P: PramProgram>(&mut self, prog: &mut P, max_steps: usize) -> EmuReport {
        assert!(prog.processors() <= self.mesh.num_nodes());
        assert!(prog.address_space() <= self.family.address_space);
        for (addr, val) in prog.initial_memory() {
            let m = self.module_of(addr);
            self.modules.poke(m, addr, val);
        }
        let p = prog.processors();
        let mut last_read: Vec<Option<u64>> = vec![None; p];
        for step in 0..max_steps {
            let ops: Vec<MemOp> = (0..p).map(|i| prog.op(i, step, last_read[i])).collect();
            if ops.iter().all(|o| matches!(o, MemOp::Halt)) {
                break;
            }
            let reads = self.emulate_step(&ops, step as u64);
            for (proc, value) in reads {
                last_read[proc] = Some(value);
            }
            self.report.pram_steps += 1;
        }
        self.report.clone()
    }

    /// Emulate one PRAM step; returns `(proc, value)` per read.
    pub fn emulate_step(&mut self, ops: &[MemOp], step_label: u64) -> Vec<(usize, u64)> {
        #[derive(Clone, Copy)]
        struct Req {
            proc: usize,
            addr: u64,
            write: Option<u64>,
        }
        let requests: Vec<Req> = ops
            .iter()
            .enumerate()
            .filter_map(|(proc, op)| match *op {
                MemOp::Read(addr) => Some(Req {
                    proc,
                    addr,
                    write: None,
                }),
                MemOp::Write(addr, v) => Some(Req {
                    proc,
                    addr,
                    write: Some(v),
                }),
                _ => None,
            })
            .collect();
        let mut stats = StepStats {
            requests: requests.len() as u32,
            ..Default::default()
        };
        if requests.is_empty() {
            self.report.steps.push(stats);
            return Vec::new();
        }

        let n = self.n() as u32;
        let step_seq = self.seq.child(1).child(step_label);
        let alg = match self.block_rows {
            Some(block_rows) => MeshAlgorithm::ThreeStageConstQueue {
                slice_rows: self.slice_rows,
                block_rows,
            },
            None => MeshAlgorithm::ThreeStage {
                slice_rows: self.slice_rows,
            },
        };
        // via2 for the constant-queue variant: random row inside the
        // destination's block, destination's column (Corollary 3.3).
        let (mesh, block_rows) = (self.mesh, self.block_rows);
        let block_via2 = move |dest: usize, rng: &mut rand::rngs::StdRng| -> u32 {
            match block_rows {
                Some(b) => {
                    let (dr, dc) = mesh.coords(dest);
                    let lo = dr - dr % b;
                    let hi = (lo + b).min(mesh.rows());
                    mesh.node_at(rng.gen_range(lo..hi), dc) as u32
                }
                None => lnpram_simnet::packet::NO_NODE,
            }
        };
        let mut attempt = 0u32;
        loop {
            let budget = self.cfg.budget_factor * 4 * n * (1 << attempt.min(8));
            let attempt_seq = step_seq.child(attempt as u64);
            self.modules.clear_batches();

            // ---- Request phase (three-stage routing to modules) ----
            self.engine.reset();
            self.engine.set_max_steps(budget);
            let mut via_rng = attempt_seq.child(0).rng();
            let mut write_vals: HashMap<u32, (u64, usize)> = HashMap::new();
            for (id, req) in requests.iter().enumerate() {
                let module = self.module_of(req.addr) as u32;
                let (r, c) = self.mesh.coords(req.proc);
                let lo = r - r % self.slice_rows;
                let hi = (lo + self.slice_rows).min(self.mesh.rows());
                let via = self.mesh.node_at(via_rng.gen_range(lo..hi), c) as u32;
                let mut pkt = Packet::new(id as u32, req.proc as u32, module)
                    .with_via(via)
                    .with_via2(block_via2(module as usize, &mut via_rng))
                    .with_tag(req.addr);
                pkt.phase = 0;
                pkt.hop = u8::from(req.write.is_some()); // request kind flag
                if let Some(v) = req.write {
                    write_vals.insert(id as u32, (v, req.proc));
                }
                self.engine.inject(req.proc, pkt);
            }
            let Self {
                modules, engine, ..
            } = self;
            let mut proto = MeshRequestProtocol {
                router: MeshRouter::new(mesh, alg),
                modules,
                write_vals: &write_vals,
            };
            let out = engine.run(&mut proto);
            if !out.completed {
                attempt += 1;
                assert!(
                    attempt <= self.cfg.max_rehashes,
                    "exceeded max_rehashes on the mesh"
                );
                self.rehash(&mut stats);
                continue;
            }
            stats.request_steps = out.metrics.routing_time;
            stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);

            // ---- Service ----
            let (reads, busiest) = self.modules.serve_batches();
            stats.service_steps = busiest;

            // ---- Reply phase (three-stage routing back) ----
            let mut deliveries: Vec<(usize, u64)> = Vec::new();
            if !reads.is_empty() {
                self.engine.reset();
                self.engine.set_max_steps(u32::MAX);
                let mut via_rng = attempt_seq.child(1).rng();
                for (i, &(module, addr, trail, value)) in reads.iter().enumerate() {
                    let (r, c) = self.mesh.coords(module);
                    let lo = r - r % self.slice_rows;
                    let hi = (lo + self.slice_rows).min(self.mesh.rows());
                    let via = self.mesh.node_at(via_rng.gen_range(lo..hi), c) as u32;
                    // Reply goes to the requesting processor (trail).
                    let mut pkt = Packet::new(i as u32, module as u32, trail)
                        .with_via(via)
                        .with_via2(block_via2(trail as usize, &mut via_rng))
                        .with_tag(addr);
                    pkt.phase = 0;
                    let _ = value; // value delivered via lookup below
                    self.engine.inject(module, pkt);
                }
                let values: HashMap<(u64, u32), u64> = reads
                    .iter()
                    .map(|&(_, addr, trail, value)| ((addr, trail), value))
                    .collect();
                let mut proto = MeshReplyProtocol {
                    router: MeshRouter::new(mesh, alg),
                    values: &values,
                    deliveries: &mut deliveries,
                };
                let out = self.engine.run(&mut proto);
                debug_assert!(out.completed);
                stats.reply_steps = out.metrics.routing_time;
                stats.max_queue = stats.max_queue.max(out.metrics.max_queue as u32);
            }

            self.report.steps.push(stats);
            return deliveries;
        }
    }

    fn rehash(&mut self, stats: &mut StepStats) {
        self.hash_epoch += 1;
        let hash = self
            .family
            .sample(&mut self.seq.child(2).child(self.hash_epoch).rng());
        // Direct mapping never rehashes into a hash map — keep locality.
        if matches!(self.mapping, MeshMapping::Hashed(_)) {
            let cells = self.modules.drain_cells();
            let batches = cells.len().div_ceil(self.mesh.num_nodes().max(1)) as u64;
            self.report.remap_steps += batches * 4 * self.n() as u64 + self.n() as u64;
            self.mapping = MeshMapping::Hashed(hash);
            for (addr, val) in cells {
                let m = self.module_of(addr);
                self.modules.poke(m, addr, val);
            }
        } else {
            // With the direct map a timeout can only be congestion;
            // charge a retry without remapping.
            self.report.remap_steps += self.n() as u64;
        }
        stats.rehashes += 1;
        self.report.rehashes += 1;
    }
}

/// Request routing: delegate movement to [`MeshRouter`]; at the module,
/// buffer instead of delivering.
struct MeshRequestProtocol<'a> {
    router: MeshRouter,
    modules: &'a mut ModuleArray,
    write_vals: &'a HashMap<u32, (u64, usize)>,
}

impl Protocol for MeshRequestProtocol<'_> {
    fn on_packet(&mut self, node: usize, pkt: Packet, step: u32, out: &mut Outbox) {
        if node == pkt.dest as usize {
            let addr = pkt.tag;
            if pkt.hop == 1 {
                let (value, proc) = self.write_vals[&pkt.id];
                self.modules
                    .buffer(node, ModuleRequest::Write { addr, value, proc });
            } else {
                self.modules.buffer(
                    node,
                    ModuleRequest::Read {
                        addr,
                        trail: pkt.src,
                    },
                );
            }
            out.deliver(pkt);
            return;
        }
        self.router.on_packet(node, pkt, step, out);
    }
}

/// Reply routing: plain three-stage delivery back to the requester.
struct MeshReplyProtocol<'a> {
    router: MeshRouter,
    values: &'a HashMap<(u64, u32), u64>,
    deliveries: &'a mut Vec<(usize, u64)>,
}

impl Protocol for MeshReplyProtocol<'_> {
    fn on_packet(&mut self, node: usize, pkt: Packet, step: u32, out: &mut Outbox) {
        if node == pkt.dest as usize {
            let value = self.values[&(pkt.tag, pkt.dest)];
            self.deliveries.push((node, value));
            out.deliver(pkt);
            return;
        }
        self.router.on_packet(node, pkt, step, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnpram_pram::machine::PramMachine;
    use lnpram_pram::model::WritePolicy;
    use lnpram_pram::programs::{Histogram, OddEvenSort, PermutationTraffic, PrefixSum};
    use lnpram_routing::workloads;

    #[test]
    fn prefix_sum_matches_reference_on_mesh() {
        let values: Vec<u64> = (0..16).map(|i| i * 3 + 1).collect();
        let mut prog = PrefixSum::new(values.clone());
        let space = prog.address_space();
        let mut emu = MeshPramEmulator::new(4, AccessMode::Erew, space, EmulatorConfig::default());
        emu.run_program(&mut prog, 10_000);
        let mut oracle = PramMachine::new(space, AccessMode::Erew);
        oracle.run(&mut PrefixSum::new(values), 10_000);
        assert_eq!(emu.memory_image(space), oracle.memory());
    }

    #[test]
    fn odd_even_sort_matches_reference_on_mesh() {
        let values: Vec<u64> = (0..9).map(|i| (97 * i + 13) % 50).collect();
        let mut prog = OddEvenSort::new(values.clone());
        let space = prog.address_space();
        let mut emu = MeshPramEmulator::new(3, AccessMode::Erew, space, EmulatorConfig::default());
        emu.run_program(&mut prog, 10_000);
        assert!(prog.verify(&emu.memory_image(space)));
    }

    #[test]
    fn crcw_histogram_on_mesh() {
        let inputs: Vec<u64> = (0..16).map(|i| i % 5).collect();
        let mut prog = Histogram::new(inputs.clone(), 5);
        let space = prog.address_space();
        let mut emu = MeshPramEmulator::new(
            4,
            AccessMode::Crcw(WritePolicy::Sum),
            space,
            EmulatorConfig::default(),
        );
        emu.run_program(&mut prog, 1000);
        assert!(prog.verify(&emu.memory_image(space)));
    }

    #[test]
    fn step_time_is_small_multiple_of_n() {
        // Theorem 3.2: 4n + o(n). At n = 16 expect well below 8n.
        let n = 16usize;
        let mut rng = SeedSeq::new(5).rng();
        let perm = workloads::random_permutation(n * n, &mut rng);
        let mut prog = PermutationTraffic::new(perm, 3);
        let mut emu = MeshPramEmulator::new(
            n,
            AccessMode::Erew,
            prog.address_space(),
            EmulatorConfig::default(),
        );
        let report = emu.run_program(&mut prog, 1000);
        assert_eq!(report.rehashes, 0);
        let per_n = emu.per_n();
        assert!(per_n < 8.0, "mesh emulation cost {per_n:.2}n");
    }

    #[test]
    fn local_requests_cost_scales_with_d() {
        // Theorem 3.3 shape: with a d-local pattern and direct mapping,
        // the step time tracks d, not n.
        let n = 16usize;
        let mesh = Mesh::square(n);
        let run = |d: usize| {
            let mut rng = SeedSeq::new(9).child(d as u64).rng();
            let dests = workloads::local_permutation(&mesh, d, &mut rng);
            let mut prog = PermutationTraffic::new(dests, 3);
            let mut emu = MeshPramEmulator::new_local(
                n,
                AccessMode::Erew,
                prog.address_space(),
                d,
                EmulatorConfig::default(),
            );
            emu.run_program(&mut prog, 1000);
            emu.report().mean_step_time()
        };
        let t2 = run(2);
        let t8 = run(8);
        assert!(
            t2 < t8,
            "more local requests must be faster: d=2 → {t2:.1}, d=8 → {t8:.1}"
        );
        // d=2 should be far below a full 4n traversal.
        assert!(t2 < 2.0 * n as f64, "d=2 cost {t2:.1} vs n={n}");
    }

    #[test]
    fn const_queue_variant_matches_reference_and_keeps_queues_small() {
        let values: Vec<u64> = (0..16).map(|i| (i * 7 + 3) % 23).collect();
        let mut prog = PrefixSum::new(values.clone());
        let space = prog.address_space();
        let mut emu = MeshPramEmulator::new(4, AccessMode::Erew, space, EmulatorConfig::default())
            .with_const_queue();
        let rep = emu.run_program(&mut prog, 10_000);
        let mut oracle = PramMachine::new(space, AccessMode::Erew);
        oracle.run(&mut PrefixSum::new(values), 10_000);
        assert_eq!(emu.memory_image(space), oracle.memory());
        let worst_queue = rep.steps.iter().map(|s| s.max_queue).max().unwrap_or(0);
        assert!(
            worst_queue <= 8,
            "const-queue emulation saw queue {worst_queue}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let perm: Vec<usize> = (0..16).map(|i| (i * 5 + 2) % 16).collect();
            let mut prog = PermutationTraffic::new(perm, 2);
            let mut emu = MeshPramEmulator::new(
                4,
                AccessMode::Erew,
                prog.address_space(),
                EmulatorConfig {
                    seed: 11,
                    ..Default::default()
                },
            );
            let rep = emu.run_program(&mut prog, 100);
            (rep.network_steps(), emu.memory_image(16))
        };
        assert_eq!(run(), run());
    }
}
