//! # lnpram-core
//!
//! The paper's contribution: emulating a CRCW PRAM on leveled networks
//! (Theorems 2.5 and 2.6 with Corollaries 2.3–2.6) and on the n×n mesh
//! (Theorems 3.2 and 3.3).
//!
//! One emulated PRAM step is: hash every shared-memory address onto a
//! memory module with a random `h ∈ H` (`lnpram-hash`); route read/write
//! request packets from the processors to the modules; serve the batch at
//! each module with PRAM read-before-write semantics; route read replies
//! back. If a routing phase overruns its step budget, pick a fresh hash
//! function, pay an explicit remap charge, and retry — the paper's
//! rehashing rule (§2.1).
//!
//! * [`config`] — emulator parameters and per-step/aggregate statistics.
//! * [`combining`] — the CRCW packet-combining tables: per-node pending
//!   entries with fan-out "direction bits" (footnote 3 of the paper);
//!   concurrent reads of one cell collapse to a single request and the
//!   reply fans back out along the recorded ports.
//! * [`memory`] — the distributed memory modules with batch service and
//!   CRCW write resolution identical to the reference machine.
//! * [`leveled_emulator`] — Theorems 2.5/2.6 on any delta leveled network
//!   (radix butterflies, the unrolled d-way/n-way shuffle).
//! * [`star_emulator`] — Corollaries 2.3/2.5 on the physical n-star
//!   graph (Algorithm 2.2 routing, phase-aware combining).
//! * [`mesh_emulator`] — Theorems 3.2/3.3 on the n×n mesh via the
//!   three-stage routing of §3.4 (4n + o(n) per EREW step; 6d + o(d)
//!   under d-local request patterns).
//! * [`replicated_emulator`] — the deterministic replicated-memory
//!   baseline in the style of the paper's reference \[3\]
//!   (Alt–Hagerup–Mehlhorn–Preparata): fixed copy placement, quorum
//!   reads/writes with version stamps, no hashing and no rehash — the
//!   comparison point for what randomization buys.
//!
//! The integration contract: running any `PramProgram` through an emulator
//! must produce the same final memory image and read trace as
//! `lnpram_pram::PramMachine`. The tests in `tests/` enforce this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combining;
pub mod config;
pub mod leveled_emulator;
pub mod memory;
pub mod mesh_emulator;
pub mod replicated_emulator;
pub mod star_emulator;

pub use config::{EmuReport, EmulatorConfig, StepStats};
pub use leveled_emulator::LeveledPramEmulator;
pub use mesh_emulator::MeshPramEmulator;
pub use replicated_emulator::ReplicatedPramEmulator;
pub use star_emulator::StarPramEmulator;
